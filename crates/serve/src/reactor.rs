//! The readiness-driven event loop behind [`crate::Server`].
//!
//! One reactor thread owns every socket: a hand-rolled `poll(2)` FFI
//! binding (the workspace vendors no libc crate, and `std` already
//! links the platform libc, so the symbol resolves without new
//! dependencies) multiplexes the non-blocking listener, a wake pipe
//! fed by the worker pool, and every live connection. Per-connection
//! protocol state lives in [`crate::conn::ConnMachine`]; request
//! handlers run on the [`crate::pool::WorkerPool`] and hand serialised
//! responses back through the completion queue, so the reactor thread
//! never computes a response body.
//!
//! Backpressure and shedding, in order of application:
//!
//! 1. **Pipeline bound** — a connection holding `pipeline_depth`
//!    parsed-but-unanswered requests loses read interest; TCP pushes
//!    back on the peer.
//! 2. **Admission window** — dispatch to workers is capped by a window
//!    resized from observed handler latency (AIMD against
//!    `target_latency`), so queueing delay stays bounded instead of
//!    growing with offered load.
//! 3. **Ready-queue shed** — when more than `queue_depth` connections
//!    wait for dispatch, the newest waiter is answered `503` with
//!    `Connection: close` *after* its pipeline position (never
//!    mid-stream), and the connection winds down cleanly.
//! 4. **Connection watermark** — at `max_connections`, accepting a
//!    newcomer first sheds the least-recently-active *idle* connection;
//!    if every connection is mid-request, the newcomer itself is
//!    refused with a best-effort 503.
//! 5. **Deadlines** — slow-loris reads (partial head older than
//!    `read_deadline`) get `408` and a close; stalled writes and silent
//!    idle peers are dropped after their timeouts.
//!
//! Closes that may race with unread client bytes (sheds, parse errors,
//! unread bodies) are *lingering*: the reactor half-closes, then drains
//! the socket briefly so the final response is not destroyed by an RST
//! — the fix for the old acceptor-side 503 poisoning keep-alive
//! clients mid-pipeline.

use crate::conn::{error_bytes, ConnConfig, ConnMachine};
use crate::metrics::Metrics;
use crate::pool::{Completion, Job, Wake, WorkerPool};
use crate::server::ServerConfig;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ------------------------------------------------------------- poll(2)

/// One entry of a `poll(2)` set — the C `struct pollfd` layout.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested readiness events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Kernel-reported readiness, valid after [`poll_fds`] returns.
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (revents only).
pub const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Block until a watched descriptor is ready or `timeout_ms` passes
/// (`-1` blocks indefinitely, `0` polls). Returns how many entries have
/// non-zero `revents`. Retries on `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid exclusively-borrowed slice, its
        // length is passed as `nfds`, and the kernel only writes the
        // `revents` fields within those bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Shrink (or grow) a socket's kernel send buffer. Used by the
/// write-stall tests to make a stalled peer observable quickly; a
/// `None` config leaves the kernel default. No-op off Linux.
pub fn set_send_buffer(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        const SOL_SOCKET: c_int = 1;
        const SO_SNDBUF: c_int = 7;
        extern "C" {
            fn setsockopt(
                fd: c_int,
                level: c_int,
                optname: c_int,
                optval: *const std::ffi::c_void,
                optlen: u32,
            ) -> c_int;
        }
        let value: c_int = bytes.min(i32::MAX as usize) as c_int;
        // SAFETY: the fd is owned by `stream` and stays open across the
        // call; optval points at a live c_int of the advertised length.
        let rc = unsafe {
            setsockopt(
                stream.as_raw_fd(),
                SOL_SOCKET,
                SO_SNDBUF,
                std::ptr::addr_of!(value).cast(),
                std::mem::size_of::<c_int>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (stream, bytes);
    }
    Ok(())
}

/// Re-issue `listen(2)` with a deeper accept backlog than the `std`
/// default of 128. On a loaded single-core host a connect storm can
/// queue hundreds of handshakes between two reactor time slices; with
/// the stock backlog the kernel starts dropping SYNs and every affected
/// client stalls for a full retransmit timeout. Linux permits adjusting
/// the backlog on an already-listening socket (clamped to
/// `net.core.somaxconn`); elsewhere this is a no-op.
pub fn set_accept_backlog(listener: &TcpListener, backlog: usize) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        extern "C" {
            fn listen(fd: c_int, backlog: c_int) -> c_int;
        }
        let depth: c_int = backlog.min(i32::MAX as usize) as c_int;
        // SAFETY: the fd is owned by `listener`, stays open across the
        // call, and is already in the listening state.
        let rc = unsafe { listen(listener.as_raw_fd(), depth) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (listener, backlog);
    }
    Ok(())
}

/// Wakes the reactor by writing one byte to its wake pipe. `WouldBlock`
/// means a wake is already pending — exactly as good.
pub struct SocketWaker(pub UnixStream);

impl Wake for SocketWaker {
    fn wake(&self) {
        let _ = (&self.0).write(&[1]);
    }
}

// ----------------------------------------------------------- admission

/// Load-adaptive concurrency: the number of requests allowed in flight
/// across all connections, resized from an EWMA of handler latency
/// (additive increase while under `target`, multiplicative decrease
/// while over — AIMD, so bursts shrink the window fast and calm traffic
/// regrows it slowly).
struct Admission {
    window: usize,
    min: usize,
    max: usize,
    target_micros: f64,
    ewma_micros: f64,
}

impl Admission {
    fn new(min: usize, max: usize, target: Duration) -> Admission {
        let min = min.max(1);
        let max = max.max(min);
        Admission {
            window: max.min(min.max(max / 2)),
            min,
            max,
            target_micros: (target.as_micros() as f64).max(1.0),
            ewma_micros: 0.0,
        }
    }

    fn on_completion(&mut self, latency: Duration) {
        let micros = latency.as_micros() as f64;
        self.ewma_micros = if self.ewma_micros == 0.0 {
            micros
        } else {
            0.8 * self.ewma_micros + 0.2 * micros
        };
        if self.ewma_micros > self.target_micros {
            let cut = (self.window / 4).max(1);
            self.window = self.window.saturating_sub(cut).max(self.min);
        } else if self.window < self.max {
            self.window += 1;
        }
    }
}

// ------------------------------------------------------------- reactor

/// How long a lingering close keeps draining the peer.
const LINGER: Duration = Duration::from_millis(500);
/// Most bytes read from one connection per loop turn (fairness bound).
const READ_BURST: usize = 64 * 1024;
/// Upper bound on one poll sleep, so flag changes are noticed even
/// without a wake byte.
const MAX_POLL_MS: i32 = 500;
/// How often idle connections join the poll set while engaged ones keep
/// the loop busy. `poll(2)` is O(fds) per call, so a plane holding tens
/// of thousands of quiet keep-alive sockets must not rescan all of them
/// on every turn: engaged connections (buffered input, queued or
/// in-flight requests, pending output, lingering closes) are polled
/// every iteration, idle ones at this bounded cadence — and whenever
/// nothing is engaged the sweep covers everyone with a long timeout, so
/// a quiescent plane still wakes on the first byte with no added
/// latency.
const IDLE_SCAN: Duration = Duration::from_millis(10);
/// Accept backlog requested at startup (see [`set_accept_backlog`]).
const ACCEPT_BACKLOG: usize = 4096;

struct Conn {
    stream: TcpStream,
    machine: ConnMachine,
    last_active: Instant,
    /// Slow-loris deadline, armed while a message is partially read.
    read_deadline: Option<Instant>,
    /// Write-stall deadline, armed when a write would block.
    write_deadline: Option<Instant>,
    /// Lingering-close deadline; the socket only drains when set.
    linger_until: Option<Instant>,
    in_ready: bool,
}

impl Conn {
    /// Connections with work in progress — buffered input, queued or
    /// in-flight requests, unflushed output, or a lingering close —
    /// are polled on every loop turn; purely idle keep-alive peers wait
    /// for the next [`IDLE_SCAN`] sweep instead.
    fn engaged(&self) -> bool {
        !self.machine.is_idle() || self.linger_until.is_some()
    }
}

/// Everything the event loop owns. Constructed by `Server::start`, run
/// on a dedicated thread until the shutdown flag is observed and the
/// drain completes.
pub(crate) struct Reactor {
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    pool: WorkerPool,
    completions: Arc<crate::pool::CompletionQueue>,
    conns: HashMap<u64, Conn>,
    /// Tokens of engaged connections (see [`Conn::engaged`]): the hot
    /// poll set, maintained incrementally at every state-transition
    /// point so no per-turn pass over all connections is needed. The
    /// sweep turns are the safety net — a token missing here is still
    /// polled and deadline-checked at [`IDLE_SCAN`] cadence.
    engaged: std::collections::HashSet<u64>,
    next_token: u64,
    ready: std::collections::VecDeque<u64>,
    in_flight: usize,
    admission: Admission,
    config: ServerConfig,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    drain_deadline: Option<Instant>,
    /// Next time idle connections join the poll set (see [`IDLE_SCAN`]).
    next_idle_scan: Instant,
    shed_response: Vec<u8>,
    timeout_response: Vec<u8>,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        pool: WorkerPool,
        completions: Arc<crate::pool::CompletionQueue>,
        config: ServerConfig,
        metrics: Arc<Metrics>,
        shutdown: Arc<AtomicBool>,
    ) -> Reactor {
        // Best effort: a refused deepening leaves the std default, which
        // only costs retransmit stalls under connect storms.
        let _ = set_accept_backlog(&listener, ACCEPT_BACKLOG);
        let admission = Admission::new(
            config.admission_min,
            config.effective_admission_max(),
            config.target_latency,
        );
        metrics.set_admission_window(admission.window as u64);
        Reactor {
            listener: Some(listener),
            wake_rx,
            pool,
            completions,
            conns: HashMap::new(),
            engaged: std::collections::HashSet::new(),
            next_token: 1,
            ready: std::collections::VecDeque::new(),
            in_flight: 0,
            admission,
            config,
            metrics,
            shutdown,
            drain_deadline: None,
            next_idle_scan: Instant::now(),
            shed_response: error_bytes(503, "server overloaded"),
            timeout_response: error_bytes(408, "request timed out"),
        }
    }

    /// The event loop. Returns once shutdown has drained (or force-
    /// closed) every connection and the workers have exited.
    pub(crate) fn run(mut self) {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<u64> = Vec::new();
        while self.turn(&mut fds, &mut tokens) {}
        // Close the queue; workers finish their in-flight handlers.
        // Joining them here is legal precisely because this is *after*
        // the last turn: lint R6 roots at turn(), not run().
        self.pool.shutdown();
        self.metrics.set_open_connections(0);
    }

    /// One reactor turn: rebuild the interest set, poll, then service
    /// readiness, completions, deadlines, and dispatch. Everything
    /// reachable from here runs with every connection's latency on the
    /// line — lint rule R6 (no-blocking) roots its reachability
    /// analysis at this function. Returns `false` once shutdown has
    /// drained (or force-closed) every connection.
    ///
    /// `fds`/`tokens` are caller-owned scratch so their capacity
    /// survives across turns.
    pub(crate) fn turn(&mut self, fds: &mut Vec<PollFd>, tokens: &mut Vec<u64>) -> bool {
        // Acquire: pairs with the Release store in shutdown() so the
        // reactor sees everything written before the flag flip.
        if self.shutdown.load(Ordering::Acquire) && self.drain_deadline.is_none() {
            self.begin_drain();
        }
        if self.drain_deadline.is_some() && self.conns.is_empty() {
            return false;
        }

        fds.clear();
        tokens.clear();
        fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
        if let Some(listener) = &self.listener {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        }
        let fixed = fds.len();
        let now = Instant::now();
        // Full sweep: on the idle-scan cadence while engaged
        // connections keep the loop hot, or on every turn once
        // nothing is engaged (the sweep then doubles as the long
        // blocking poll, so idle peers wake the loop immediately).
        let full = self.engaged.is_empty() || now >= self.next_idle_scan;
        if full {
            self.next_idle_scan = now + IDLE_SCAN;
            for (token, conn) in &self.conns {
                push_interest(fds, tokens, *token, conn);
            }
        } else {
            for token in &self.engaged {
                if let Some(conn) = self.conns.get(token) {
                    push_interest(fds, tokens, *token, conn);
                }
            }
        }

        let mut timeout_ms = self.poll_timeout_ms();
        if !full {
            // A hot-only poll must yield by the next idle sweep.
            let until_scan = self
                .next_idle_scan
                .saturating_duration_since(now)
                .as_millis()
                .min(MAX_POLL_MS as u128) as i32;
            timeout_ms = timeout_ms.min(until_scan.max(1));
        }
        if poll_fds(fds, timeout_ms).is_err() {
            // EINTR is retried inside poll_fds; any other failure
            // here is unrecoverable for the loop — treat it as a
            // shutdown request rather than spinning.
            // Release: pairs with the Acquire load above.
            self.shutdown.store(true, Ordering::Release);
            return true;
        }

        if fds.first().is_some_and(|f| f.revents != 0) {
            self.drain_wake_pipe();
        }
        self.drain_completions();
        if self.listener.is_some() && fds.get(1).is_some_and(|f| f.revents != 0) {
            self.accept_ready();
        }
        for (slot, token) in tokens.iter().enumerate() {
            let Some(revents) = fds.get(fixed + slot).map(|f| f.revents) else {
                continue;
            };
            if revents == 0 {
                continue;
            }
            self.handle_conn_event(*token, revents);
        }
        self.enforce_deadlines(full);
        self.dispatch();
        self.metrics.set_open_connections(self.conns.len() as u64);
        true
    }

    // -------------------------------------------------------- plumbing

    fn poll_timeout_ms(&self) -> i32 {
        let now = Instant::now();
        let mut nearest: Option<Instant> = self.drain_deadline;
        // Idle peers only carry the idle timeout, which the sweep turns
        // enforce with up to MAX_POLL_MS of slack; scanning only the
        // engaged set keeps every loop turn O(engaged) rather than
        // O(connections).
        for token in &self.engaged {
            let Some(conn) = self.conns.get(token) else {
                continue;
            };
            for deadline in [conn.read_deadline, conn.write_deadline, conn.linger_until]
                .into_iter()
                .flatten()
            {
                nearest = Some(match nearest {
                    Some(n) if n <= deadline => n,
                    _ => deadline,
                });
            }
        }
        match nearest {
            Some(at) => {
                let ms = at.saturating_duration_since(now).as_millis();
                (ms.min(MAX_POLL_MS as u128) as i32).max(0)
            }
            None => MAX_POLL_MS,
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break, // WouldBlock: pipe drained
            }
        }
    }

    fn drain_completions(&mut self) {
        for completion in self.completions.drain() {
            self.apply_completion(completion);
        }
    }

    fn apply_completion(&mut self, completion: Completion) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.admission.on_completion(completion.latency);
        self.metrics
            .set_admission_window(self.admission.window as u64);
        let Some(conn) = self.conns.get_mut(&completion.conn) else {
            return; // connection died while the handler ran
        };
        conn.machine
            .complete(&completion.bytes, completion.keep_alive);
        conn.last_active = Instant::now();
        self.after_machine_progress(completion.conn);
        self.sync_engagement(completion.conn);
    }

    /// Re-evaluate a connection after its machine advanced: flush
    /// output opportunistically, queue it for dispatch or shed it, and
    /// close it when done.
    fn after_machine_progress(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.machine.has_output() && !write_some(conn) {
            self.close_now(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // Arm or clear the slow-loris deadline from the parser state.
        if conn.machine.mid_message() {
            if conn.read_deadline.is_none() {
                conn.read_deadline = Some(Instant::now() + self.config.read_deadline);
            }
        } else {
            conn.read_deadline = None;
        }
        if conn.machine.done() {
            self.finish(token);
            return;
        }
        if self
            .conns
            .get(&token)
            .is_some_and(|c| c.machine.dispatchable() && !c.in_ready)
        {
            if self.ready.len() >= self.config.queue_depth.max(1) {
                // Ready queue over the bound: shed this connection's
                // next request with a close-framed 503.
                if let Some(conn) = self.conns.get_mut(&token) {
                    if conn.machine.shed_next(&self.shed_response) {
                        self.metrics.request_shed();
                        self.metrics
                            .record(crate::metrics::Endpoint::Other, 503, Duration::ZERO);
                        self.after_flush_or_close(token);
                    }
                }
            } else if let Some(conn) = self.conns.get_mut(&token) {
                conn.in_ready = true;
                self.ready.push_back(token);
            }
        }
    }

    /// Try to flush and, if the machine is finished, close.
    fn after_flush_or_close(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.machine.has_output() && !write_some(conn) {
            self.close_now(token);
            return;
        }
        if self.conns.get(&token).is_some_and(|c| c.machine.done()) {
            self.finish(token);
        }
    }

    // ---------------------------------------------------------- accept

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.admit_connection(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn admit_connection(&mut self, stream: TcpStream) {
        if self.conns.len() >= self.config.max_connections.max(1) {
            // Watermark: make room by shedding the least-recently-
            // active idle connection; if everyone is mid-request, the
            // newcomer is the one refused.
            if let Some(victim) = self.least_recently_active_idle() {
                self.metrics.connection_shed();
                self.close_now(victim);
            } else {
                self.metrics.connection_rejected();
                let mut stream = stream;
                let _ = stream.set_nonblocking(true);
                let _ = stream.write(&self.shed_response);
                return;
            }
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Some(bytes) = self.config.send_buffer_bytes {
            let _ = set_send_buffer(&stream, bytes);
        }
        self.metrics.connection_opened();
        let token = self.next_token;
        self.next_token += 1;
        self.conns.insert(
            token,
            Conn {
                stream,
                machine: ConnMachine::new(ConnConfig {
                    max_requests: self.config.max_requests_per_connection,
                    pipeline_depth: self.config.pipeline_depth,
                }),
                last_active: Instant::now(),
                read_deadline: None,
                write_deadline: None,
                linger_until: None,
                in_ready: false,
            },
        );
        self.sync_engagement(token);
    }

    fn least_recently_active_idle(&self) -> Option<u64> {
        self.conns
            .iter()
            .filter(|(_, c)| c.machine.is_idle() && c.linger_until.is_none())
            .min_by_key(|(_, c)| c.last_active)
            .map(|(token, _)| *token)
    }

    // ------------------------------------------------------ connection

    fn handle_conn_event(&mut self, token: u64, revents: i16) {
        if revents & (POLLERR | POLLNVAL) != 0 {
            self.close_now(token);
            return;
        }
        if revents & (POLLIN | POLLHUP) != 0 && !self.read_ready(token) {
            return; // connection closed during the read
        }
        if revents & POLLOUT != 0 {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.write_deadline = None;
            if !write_some(conn) {
                self.close_now(token);
                return;
            }
        }
        self.after_flush_or_close(token);
        if self.conns.contains_key(&token) {
            self.after_machine_progress(token);
        }
        self.sync_engagement(token);
    }

    /// Drain readable bytes into the machine. Returns `false` when the
    /// connection was torn down.
    fn read_ready(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let mut chunk = [0u8; 16 * 1024];
        let mut total = 0usize;
        let lingering = conn.linger_until.is_some();
        loop {
            if !lingering && !conn.machine.wants_read() {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    if lingering {
                        self.drop_conn(token);
                        return false;
                    }
                    if let Some(status) = conn.machine.on_eof() {
                        self.metrics.record(
                            crate::metrics::Endpoint::Other,
                            status,
                            Duration::ZERO,
                        );
                    }
                    break;
                }
                Ok(n) => {
                    conn.last_active = Instant::now();
                    total += n;
                    if !lingering {
                        let data = chunk.get(..n).unwrap_or(&chunk);
                        if let Some(status) = conn.machine.on_bytes(data) {
                            self.metrics.record(
                                crate::metrics::Endpoint::Other,
                                status,
                                Duration::ZERO,
                            );
                        }
                    }
                    if total >= READ_BURST {
                        break; // fairness: let other connections run
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.drop_conn(token);
                    return false;
                }
            }
        }
        true
    }

    // ------------------------------------------------------- deadlines

    /// `full` marks a sweep turn: only then are idle connections
    /// examined (their sole deadline is the idle timeout, which
    /// tolerates sweep-cadence slack); hot turns check engaged
    /// connections only, keeping this O(engaged) rather than
    /// O(connections).
    fn enforce_deadlines(&mut self, full: bool) {
        let now = Instant::now();
        let force_close_all = self.drain_deadline.is_some_and(|d| now >= d);
        let idle_after = self.config.read_timeout;
        // Hot turns only examine the engaged set, so deadline
        // enforcement costs O(engaged) per turn; the sweep walks
        // everything and is the only place idle timeouts fire.
        let candidates: Vec<u64> = if full || force_close_all {
            self.conns.keys().copied().collect()
        } else {
            self.engaged.iter().copied().collect()
        };
        let expired: Vec<(u64, Expiry)> = candidates
            .iter()
            .filter_map(|token| {
                let conn = self.conns.get(token)?;
                if force_close_all {
                    return Some((*token, Expiry::Force));
                }
                if conn.linger_until.is_some_and(|d| now >= d) {
                    return Some((*token, Expiry::Force));
                }
                if conn.read_deadline.is_some_and(|d| now >= d) {
                    return Some((*token, Expiry::SlowRead));
                }
                if conn.write_deadline.is_some_and(|d| now >= d) {
                    return Some((*token, Expiry::WriteStall));
                }
                if conn.machine.is_idle() && now >= conn.last_active + idle_after {
                    return Some((*token, Expiry::Idle));
                }
                None
            })
            .collect();
        for (token, why) in expired {
            match why {
                Expiry::Force => self.drop_conn(token),
                Expiry::SlowRead => {
                    self.metrics.read_timeout();
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.read_deadline = None;
                        conn.machine.abort_input(self.timeout_response.clone());
                    }
                    self.after_flush_or_close(token);
                    self.sync_engagement(token);
                }
                Expiry::WriteStall => {
                    self.metrics.write_stall_timeout();
                    self.drop_conn(token);
                }
                Expiry::Idle => {
                    self.metrics.read_timeout();
                    self.drop_conn(token);
                }
            }
        }
        // Arm write-stall deadlines for connections with queued output
        // that made no progress this turn. Queued output implies
        // engagement, so hot turns skip idle peers here too; a deadline
        // left behind by output drained elsewhere is cleared on the
        // next sweep, long before it could fire.
        for token in &candidates {
            let Some(conn) = self.conns.get_mut(token) else {
                continue;
            };
            if conn.machine.has_output() {
                if conn.write_deadline.is_none() {
                    conn.write_deadline = Some(now + self.config.write_stall_timeout);
                }
            } else {
                conn.write_deadline = None;
            }
        }
    }

    // -------------------------------------------------------- dispatch

    fn dispatch(&mut self) {
        while self.in_flight < self.admission.window {
            let Some(token) = self.ready.pop_front() else {
                break;
            };
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            conn.in_ready = false;
            let Some(pending) = conn.machine.next_job() else {
                self.sync_engagement(token);
                continue;
            };
            self.in_flight += 1;
            let job = Job {
                conn: token,
                request: pending.request,
                keep_alive: pending.keep_alive,
            };
            if let Err(job) = self.pool.execute(job) {
                // Channel full or closed (only reachable when the
                // window was configured past the channel capacity, or
                // during teardown): answer 503 inline.
                self.in_flight = self.in_flight.saturating_sub(1);
                self.metrics.request_shed();
                self.metrics
                    .record(crate::metrics::Endpoint::Other, 503, Duration::ZERO);
                let _ = job;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.machine.complete(&self.shed_response, false);
                }
                self.after_flush_or_close(token);
            }
            self.sync_engagement(token);
        }
    }

    // -------------------------------------------------------- shutdown

    fn begin_drain(&mut self) {
        // Stop accepting; the bound port frees immediately.
        self.listener = None;
        self.drain_deadline = Some(Instant::now() + self.config.shutdown_grace);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                if conn.machine.is_idle() && conn.linger_until.is_none() {
                    self.drop_conn(token);
                } else {
                    conn.machine.begin_drain();
                    self.after_flush_or_close(token);
                }
            }
            self.sync_engagement(token);
        }
    }

    // ----------------------------------------------------------- close

    /// The machine reports `done()`: close, lingering when unread
    /// client bytes could turn the close into an RST.
    fn finish(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.machine.needs_linger() && conn.linger_until.is_none() {
            // Half-close: the peer sees FIN (and our final response),
            // while we keep draining whatever it already sent.
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.linger_until = Some(Instant::now() + LINGER);
        } else if conn.linger_until.is_none() {
            self.drop_conn(token);
        }
    }

    /// Abrupt close (I/O error, shed victim, expired linger).
    fn close_now(&mut self, token: u64) {
        self.drop_conn(token);
    }

    fn drop_conn(&mut self, token: u64) {
        self.conns.remove(&token);
        self.engaged.remove(&token);
        self.ready.retain(|t| *t != token);
    }

    /// Reconcile the hot poll set with the connection's actual state.
    /// Called wherever a connection is touched (I/O event, completion,
    /// deadline action, accept, dispatch) — the places engagement can
    /// change. A missed transition is not fatal: the idle sweep
    /// re-polls every connection within [`IDLE_SCAN`].
    fn sync_engagement(&mut self, token: u64) {
        if self.conns.get(&token).is_some_and(Conn::engaged) {
            self.engaged.insert(token);
        } else {
            self.engaged.remove(&token);
        }
    }
}

#[derive(Clone, Copy)]
enum Expiry {
    Force,
    SlowRead,
    WriteStall,
    Idle,
}

/// Append `conn`'s poll interest (if any) to the fd and token lists.
fn push_interest(fds: &mut Vec<PollFd>, tokens: &mut Vec<u64>, token: u64, conn: &Conn) {
    let mut events = 0i16;
    if conn.machine.wants_read() || conn.linger_until.is_some() {
        events |= POLLIN;
    }
    if conn.machine.has_output() {
        events |= POLLOUT;
    }
    if events != 0 {
        fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
        tokens.push(token);
    }
}

/// Write as much queued output as the socket accepts. Returns `false`
/// when the connection is dead.
fn write_some(conn: &mut Conn) -> bool {
    while conn.machine.has_output() {
        match conn.stream.write(conn.machine.writable()) {
            Ok(0) => return false,
            Ok(n) => {
                conn.machine.advance_write(n);
                conn.last_active = Instant::now();
                conn.write_deadline = None;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}
