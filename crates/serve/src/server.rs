//! The TCP front end: accept loop, routing, keep-alive, shutdown.
//!
//! One acceptor thread hands connections to the bounded [`ThreadPool`]
//! (`crate::pool`); when the pool refuses, the acceptor answers 503
//! inline and closes — load shedding happens before any per-request
//! allocation. Handlers resolve the [`SharedView`] once per request, so
//! each response is computed against one pinned epoch no matter how
//! many publishes land while it runs.

use crate::api;
use crate::http::{
    body_disposition, drain_body, read_request, Body, BodyDisposition, Request, Response,
};
use crate::metrics::{Endpoint, Metrics};
use crate::pool::ThreadPool;
use crate::view::SharedView;
use ripki_dns::DomainName;
use ripki_net::{Asn, IpPrefix};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the serving front end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Connections allowed to queue behind busy workers before new
    /// arrivals are shed with 503.
    pub queue_depth: usize,
    /// Per-read socket timeout; a silent keep-alive peer is dropped
    /// after this long.
    pub read_timeout: Duration,
    /// Requests served on one connection before it is closed (bounds
    /// how long a single peer can pin a worker).
    pub max_requests_per_connection: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 8,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1024,
        }
    }
}

/// A running server; dropping it (or calling [`shutdown`]
/// (Server::shutdown)) stops the acceptor and joins every worker.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    metrics: Arc<Metrics>,
    view: Arc<SharedView>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving `view`.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        view: Arc<SharedView>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Build the pool here so a thread-spawn failure surfaces as an
        // `Err` from `start` instead of a panic inside the acceptor.
        let pool = ThreadPool::new(config.workers, config.queue_depth)?;
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let view = Arc::clone(&view);
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            std::thread::Builder::new()
                .name("ripki-serve-accept".into())
                .spawn(move || accept_loop(listener, pool, view, metrics, shutdown, config))?
        };
        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            metrics,
            view,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics (shared with `/metrics`).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The served view handle (for publishing new epochs).
    pub fn view(&self) -> &Arc<SharedView> {
        &self.view
    }

    /// Stop accepting, drain the workers, and join the acceptor.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The acceptor blocks in `accept`; a throwaway connection to
        // ourselves wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    mut pool: ThreadPool,
    view: Arc<SharedView>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        metrics.connection_opened();
        // The worker gets a duplicated handle so that, on queue
        // overflow, the acceptor still owns one to write the 503 on.
        let Ok(worker_stream) = stream.try_clone() else {
            continue;
        };
        let view = Arc::clone(&view);
        let job_metrics = Arc::clone(&metrics);
        let job_shutdown = Arc::clone(&shutdown);
        let job_config = config.clone();
        let submit = pool.try_execute(move || {
            handle_connection(
                worker_stream,
                &view,
                &job_metrics,
                &job_shutdown,
                &job_config,
            );
        });
        if submit.is_err() {
            metrics.connection_rejected();
            let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
            let _ = Response::error(503, "server overloaded").write_to(&mut stream, false);
        }
    }
    pool.shutdown();
}

fn handle_connection(
    stream: TcpStream,
    view: &SharedView,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    for _ in 0..config.max_requests_per_connection {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_request(&mut stream, &mut buf) {
            Ok(Ok(Some(request))) => request,
            Ok(Ok(None)) => return, // clean close between requests
            Ok(Err(e)) => {
                // lint: allow(wall-clock) request-latency measurement —
                // Instant is the right clock for elapsed time and the
                // injected study clock does not tick in real time.
                let started = Instant::now();
                let response = Response::from_http_error(&e);
                metrics.record(Endpoint::Other, response.status, started.elapsed());
                let _ = response.write_to(&mut stream, false);
                return;
            }
            Err(_) => return, // socket error / read timeout
        };
        // No endpoint reads bodies (everything is a GET), but closing
        // on every announced body wastes connections: small ones are
        // drained off the stream so the next pipelined request parses
        // cleanly; chunked or oversized ones still cost the connection.
        let disposition = body_disposition(&request);
        let keep_alive = request.keep_alive() && disposition != BodyDisposition::Close;
        if let BodyDisposition::Drain(len) = disposition {
            if drain_body(&mut stream, &mut buf, len).is_err() {
                return; // peer vanished mid-body; nothing to answer
            }
        }
        // lint: allow(wall-clock) request-latency measurement — see the
        // justification on the error path above.
        let started = Instant::now();
        let (endpoint, response) = route(view, metrics, &request, config);
        metrics.record(endpoint, response.status, started.elapsed());
        if !matches!(response.write_to(&mut stream, keep_alive), Ok(true)) {
            return;
        }
    }
}

/// Dispatch one request to its handler. Returns the endpoint label for
/// accounting together with the response.
fn route(
    view: &SharedView,
    metrics: &Metrics,
    request: &Request,
    config: &ServerConfig,
) -> (Endpoint, Response) {
    if request.method != "GET" {
        return (
            Endpoint::Other,
            Response::error(405, "only GET is supported"),
        );
    }
    // Pin the epoch once; everything below answers from `current`.
    let current = view.current();
    let path = request.path.as_str();
    match path {
        "/api/v1/validity" => (Endpoint::Validity, validity_from_query(&current, request)),
        "/vrps.json" => (
            Endpoint::VrpsJson,
            vrp_export("application/json", &current, request, api::write_vrps_json),
        ),
        "/vrps.csv" => (
            Endpoint::VrpsCsv,
            vrp_export("text/csv", &current, request, api::write_vrps_csv),
        ),
        "/metrics" => {
            let text = metrics.render_with_exceptions(
                current.epoch(),
                current.payload().len(),
                current.slurm_stats().map(|s| (s.filtered, s.asserted)),
            );
            (
                Endpoint::Metrics,
                Response {
                    status: 200,
                    content_type: "text/plain; version=0.0.4",
                    headers: Vec::new(),
                    body: Body::Full(text.into_bytes()),
                },
            )
        }
        "/status" => {
            // Lag is computed against the epoch pinned above, not a
            // re-read — the reported pair (epoch, epoch_lag) must be
            // consistent within one response.
            let lag = view.newest_epoch().saturating_sub(current.epoch());
            let payload = api::status(
                &current,
                metrics.uptime().as_secs_f64(),
                metrics.total_requests(),
                config.workers,
                lag,
            );
            (Endpoint::Status, Response::json(200, &payload))
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/api/v1/validity/") {
                return (Endpoint::Validity, validity_from_path(&current, rest));
            }
            if let Some(name) = path.strip_prefix("/api/v1/domain/") {
                return (Endpoint::Domain, domain_lookup(&current, name));
            }
            (Endpoint::Other, Response::error(404, "no such endpoint"))
        }
    }
}

/// The strong entity tag of an epoch-pinned VRP export. The exports are
/// a pure function of the published epoch (which also drives the RTR
/// serial), so the epoch number is the whole cache key.
fn export_etag(view: &crate::view::EpochView) -> String {
    format!("\"ripki-epoch-{}\"", view.epoch())
}

/// RFC 9110 `If-None-Match`: a comma-separated list of entity tags, or
/// `*`. Weak-comparison (`W/` prefixes are ignored) — the right choice
/// for cache revalidation per the RFC.
fn if_none_match_matches(request: &Request, etag: &str) -> bool {
    let Some(raw) = request.header("if-none-match") else {
        return false;
    };
    raw.split(',').map(str::trim).any(|candidate| {
        candidate == "*" || candidate.strip_prefix("W/").unwrap_or(candidate) == etag
    })
}

/// A VRP export, answered conditionally: a matching `If-None-Match`
/// gets an empty 304 (connection stays reusable, nothing re-streamed);
/// otherwise the export is streamed with its `ETag` attached.
fn vrp_export(
    content_type: &'static str,
    view: &Arc<crate::view::EpochView>,
    request: &Request,
    writer: fn(&crate::view::EpochView, &mut dyn Write) -> io::Result<u64>,
) -> Response {
    let etag = export_etag(view);
    if if_none_match_matches(request, &etag) {
        return Response::not_modified(etag);
    }
    let view = Arc::clone(view);
    Response {
        status: 200,
        content_type,
        headers: vec![("etag", etag)],
        body: Body::Stream(Box::new(move |w: &mut dyn Write| writer(&view, w))),
    }
}

fn validity_from_query(view: &crate::view::EpochView, request: &Request) -> Response {
    let (Some(asn), Some(prefix)) = (request.query_param("asn"), request.query_param("prefix"))
    else {
        return Response::error(400, "query parameters `asn` and `prefix` are required");
    };
    validity_response(view, asn, prefix)
}

/// Routinator's path form: `/api/v1/validity/AS{n}/{prefix}` where the
/// prefix itself contains a slash.
fn validity_from_path(view: &crate::view::EpochView, rest: &str) -> Response {
    let Some((asn, prefix)) = rest.split_once('/') else {
        return Response::error(400, "expected /api/v1/validity/{asn}/{prefix}");
    };
    validity_response(view, asn, prefix)
}

fn validity_response(view: &crate::view::EpochView, asn: &str, prefix: &str) -> Response {
    let Ok(origin) = asn.parse::<Asn>() else {
        return Response::error(400, "unparseable ASN");
    };
    let Ok(prefix) = prefix.parse::<IpPrefix>() else {
        return Response::error(400, "unparseable prefix");
    };
    Response::json(200, &api::validity(view, &prefix, origin))
}

fn domain_lookup(view: &crate::view::EpochView, raw: &str) -> Response {
    let Ok(name) = DomainName::parse(raw.trim_end_matches('/')) else {
        return Response::error(400, "unparseable domain name");
    };
    match api::domain(view, &name) {
        Some(payload) => Response::json(200, &payload),
        None => Response::error(404, "domain not in the measured ranking"),
    }
}
