//! The TCP front end: configuration, routing, and lifecycle of the
//! event-driven serving plane.
//!
//! `Server::start` binds a non-blocking listener and spawns one reactor
//! thread (see [`crate::reactor`]) plus a small worker pool
//! ([`crate::pool`]). The reactor owns every socket; workers only ever
//! see parsed requests and produce fully serialised responses, which
//! the reactor writes back under `POLLOUT` interest. Handlers resolve
//! the [`SharedView`] once per request, so each response is computed
//! against one pinned epoch no matter how many publishes land while it
//! runs.

use crate::api;
use crate::http::{Body, Request, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::pool::{CompletionQueue, Handler, WorkerPool};
use crate::reactor::{Reactor, SocketWaker};
use crate::view::SharedView;
use ripki_dns::DomainName;
use ripki_net::{Asn, IpPrefix};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the serving front end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing request handlers.
    pub workers: usize,
    /// Connections allowed to wait for dispatch before the newest
    /// waiter's request is shed with a close-framed 503.
    pub queue_depth: usize,
    /// Idle timeout: a silent keep-alive peer with nothing queued is
    /// dropped after this long.
    pub read_timeout: Duration,
    /// Requests served on one connection before it is closed (bounds
    /// how long a single peer can pin server state).
    pub max_requests_per_connection: usize,
    /// Hard cap on concurrently open connections; at the watermark the
    /// least-recently-active idle connection is shed to admit a
    /// newcomer (the newcomer is refused if nobody is idle).
    pub max_connections: usize,
    /// Slow-loris deadline: a connection holding a partially-read
    /// message longer than this is answered 408 and closed.
    pub read_deadline: Duration,
    /// A connection whose queued response bytes make no progress for
    /// this long is dropped.
    pub write_stall_timeout: Duration,
    /// Parsed-but-unanswered requests one connection may hold before
    /// it loses read interest (HTTP/1.1 pipelining bound).
    pub pipeline_depth: usize,
    /// Floor of the load-adaptive admission window.
    pub admission_min: usize,
    /// Ceiling of the admission window; `0` means `workers * 2`.
    pub admission_max: usize,
    /// Handler-latency target the admission controller steers toward.
    pub target_latency: Duration,
    /// How long a graceful shutdown waits for in-flight requests to
    /// drain before force-closing stragglers.
    pub shutdown_grace: Duration,
    /// Kernel send-buffer override per connection (`None` keeps the
    /// default); shrunk by tests to make write stalls observable.
    pub send_buffer_bytes: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 8,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1024,
            max_connections: 4096,
            read_deadline: Duration::from_secs(5),
            write_stall_timeout: Duration::from_secs(5),
            pipeline_depth: 4,
            admission_min: 1,
            admission_max: 0,
            target_latency: Duration::from_millis(25),
            shutdown_grace: Duration::from_secs(3),
            send_buffer_bytes: None,
        }
    }
}

impl ServerConfig {
    /// The admission-window ceiling with the `0 = workers * 2` default
    /// resolved. Also sizes the worker job channel, so a window within
    /// the ceiling can always dispatch without blocking.
    pub fn effective_admission_max(&self) -> usize {
        if self.admission_max == 0 {
            self.workers.max(1) * 2
        } else {
            self.admission_max
        }
    }
}

/// A running server; dropping it (or calling [`shutdown`]
/// (Server::shutdown)) drains in-flight requests and joins the reactor
/// and every worker.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    reactor: Option<JoinHandle<()>>,
    wake: UnixStream,
    metrics: Arc<Metrics>,
    view: Arc<SharedView>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving `view`.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        view: Arc<SharedView>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let completions = Arc::new(CompletionQueue::new(Box::new(SocketWaker(
            wake_tx.try_clone()?,
        ))));
        let handler = request_handler(Arc::clone(&view), Arc::clone(&metrics), config.clone());
        // Channel capacity = the admission ceiling, so dispatch within
        // the window never finds the channel full. Built here so a
        // thread-spawn failure surfaces as an `Err` from `start`.
        let pool = WorkerPool::new(
            config.workers,
            config.effective_admission_max(),
            handler,
            Arc::clone(&completions),
        )?;
        let reactor = Reactor::new(
            listener,
            wake_rx,
            pool,
            completions,
            config,
            Arc::clone(&metrics),
            Arc::clone(&shutdown),
        );
        let handle = std::thread::Builder::new()
            .name("ripki-serve-reactor".into())
            .spawn(move || reactor.run())?;
        Ok(Server {
            addr,
            shutdown,
            reactor: Some(handle),
            wake: wake_tx,
            metrics,
            view,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics (shared with `/metrics`).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The served view handle (for publishing new epochs).
    pub fn view(&self) -> &Arc<SharedView> {
        &self.view
    }

    /// Stop accepting, drain in-flight requests (bounded by
    /// `shutdown_grace`), and join the reactor and workers.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The reactor may be parked in poll(); a wake byte makes it
        // observe the flag immediately.
        let _ = (&self.wake).write(&[1]);
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Build the worker-side handler: route the request, serialise the
/// response, account the latency. Returns the bytes plus the final
/// keep-alive verdict (streamed bodies are close-delimited and always
/// downgrade).
fn request_handler(view: Arc<SharedView>, metrics: Arc<Metrics>, config: ServerConfig) -> Handler {
    Arc::new(move |request: &Request, want_keep: bool| {
        let started = Instant::now();
        let (endpoint, response) = route(&view, &metrics, request, &config);
        let status = response.status;
        let mut bytes: Vec<u8> = Vec::with_capacity(512);
        let keep = matches!(response.write_to(&mut bytes, want_keep), Ok(true));
        metrics.record(endpoint, status, started.elapsed());
        (bytes, keep)
    })
}

/// Dispatch one request to its handler. Returns the endpoint label for
/// accounting together with the response.
fn route(
    view: &SharedView,
    metrics: &Metrics,
    request: &Request,
    config: &ServerConfig,
) -> (Endpoint, Response) {
    if request.method != "GET" {
        return (
            Endpoint::Other,
            Response::error(405, "only GET is supported"),
        );
    }
    // Pin the epoch once; everything below answers from `current`.
    let current = view.current();
    let path = request.path.as_str();
    match path {
        "/api/v1/validity" => (Endpoint::Validity, validity_from_query(&current, request)),
        "/vrps.json" => (
            Endpoint::VrpsJson,
            vrp_export("application/json", &current, request, api::write_vrps_json),
        ),
        "/vrps.csv" => (
            Endpoint::VrpsCsv,
            vrp_export("text/csv", &current, request, api::write_vrps_csv),
        ),
        "/metrics" => {
            let text = metrics.render_with_exceptions(
                current.epoch(),
                current.payload().len(),
                current.slurm_stats().map(|s| (s.filtered, s.asserted)),
            );
            (
                Endpoint::Metrics,
                Response {
                    status: 200,
                    content_type: "text/plain; version=0.0.4",
                    headers: Vec::new(),
                    body: Body::Full(text.into_bytes()),
                },
            )
        }
        "/status" => {
            // Lag is computed against the epoch pinned above, not a
            // re-read — the reported pair (epoch, epoch_lag) must be
            // consistent within one response.
            let lag = view.newest_epoch().saturating_sub(current.epoch());
            let payload = api::status(
                &current,
                metrics.uptime().as_secs_f64(),
                metrics.total_requests(),
                config.workers,
                lag,
                metrics.open_connections(),
                metrics.admission_window(),
            );
            (Endpoint::Status, Response::json(200, &payload))
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/api/v1/validity/") {
                return (Endpoint::Validity, validity_from_path(&current, rest));
            }
            if let Some(name) = path.strip_prefix("/api/v1/domain/") {
                return (Endpoint::Domain, domain_lookup(&current, name));
            }
            (Endpoint::Other, Response::error(404, "no such endpoint"))
        }
    }
}

/// The strong entity tag of an epoch-pinned VRP export. The exports are
/// a pure function of the published epoch (which also drives the RTR
/// serial), so the epoch number is the whole cache key.
fn export_etag(view: &crate::view::EpochView) -> String {
    format!("\"ripki-epoch-{}\"", view.epoch())
}

/// RFC 9110 `If-None-Match`: a comma-separated list of entity tags, or
/// `*`. Weak-comparison (`W/` prefixes are ignored) — the right choice
/// for cache revalidation per the RFC.
fn if_none_match_matches(request: &Request, etag: &str) -> bool {
    let Some(raw) = request.header("if-none-match") else {
        return false;
    };
    raw.split(',').map(str::trim).any(|candidate| {
        candidate == "*" || candidate.strip_prefix("W/").unwrap_or(candidate) == etag
    })
}

/// A VRP export, answered conditionally: a matching `If-None-Match`
/// gets an empty 304 (connection stays reusable, nothing re-streamed);
/// otherwise the export is streamed with its `ETag` attached.
fn vrp_export(
    content_type: &'static str,
    view: &Arc<crate::view::EpochView>,
    request: &Request,
    writer: fn(&crate::view::EpochView, &mut dyn Write) -> io::Result<u64>,
) -> Response {
    let etag = export_etag(view);
    if if_none_match_matches(request, &etag) {
        return Response::not_modified(etag);
    }
    let view = Arc::clone(view);
    Response {
        status: 200,
        content_type,
        headers: vec![("etag", etag)],
        body: Body::Stream(Box::new(move |w: &mut dyn Write| writer(&view, w))),
    }
}

fn validity_from_query(view: &crate::view::EpochView, request: &Request) -> Response {
    let (Some(asn), Some(prefix)) = (request.query_param("asn"), request.query_param("prefix"))
    else {
        return Response::error(400, "query parameters `asn` and `prefix` are required");
    };
    validity_response(view, asn, prefix)
}

/// Routinator's path form: `/api/v1/validity/AS{n}/{prefix}` where the
/// prefix itself contains a slash.
fn validity_from_path(view: &crate::view::EpochView, rest: &str) -> Response {
    let Some((asn, prefix)) = rest.split_once('/') else {
        return Response::error(400, "expected /api/v1/validity/{asn}/{prefix}");
    };
    validity_response(view, asn, prefix)
}

fn validity_response(view: &crate::view::EpochView, asn: &str, prefix: &str) -> Response {
    let Ok(origin) = asn.parse::<Asn>() else {
        return Response::error(400, "unparseable ASN");
    };
    let Ok(prefix) = prefix.parse::<IpPrefix>() else {
        return Response::error(400, "unparseable prefix");
    };
    Response::json(200, &api::validity(view, &prefix, origin))
}

fn domain_lookup(view: &crate::view::EpochView, raw: &str) -> Response {
    let Ok(name) = DomainName::parse(raw.trim_end_matches('/')) else {
        return Response::error(400, "unparseable domain name");
    };
    match api::domain(view, &name) {
        Some(payload) => Response::json(200, &payload),
        None => Response::error(404, "domain not in the measured ranking"),
    }
}
