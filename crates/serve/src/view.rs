//! The epoch-consistent view the HTTP plane answers from.
//!
//! Every response is computed against exactly one [`EpochView`]: a
//! `WorldSnapshot` and the `StudyResults` measured *from that snapshot*,
//! bound together and stamped with the shared epoch. The view is
//! published atomically behind an `Arc` swap ([`SharedView`]), so a
//! request either sees the world entirely at epoch N or entirely at
//! epoch N+1 — never VRPs from one epoch and measurements from another.
//! The constructor enforces the contract; the concurrency test in
//! `tests/concurrent_epoch.rs` hammers it under live churn.

use ripki::engine::WorldSnapshot;
use ripki::exposure::{exposure_curve, ExposureConfig};
use ripki::pipeline::{DomainMeasurement, StudyResults};
use ripki_bgp::rov::{RouteOriginValidator, ValidityDetail};
use ripki_bgp::topology::Topology;
use ripki_dns::DomainName;
use ripki_net::{Asn, IpPrefix};
use ripki_payload::VrpPayload;
use ripki_slurm::{ExceptionSet, SlurmStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One epoch of the world, packaged for serving.
pub struct EpochView {
    snapshot: Arc<WorldSnapshot>,
    results: Arc<StudyResults>,
    payload: VrpPayload,
    by_name: HashMap<DomainName, usize>,
    topology: Option<Arc<Topology>>,
    exposure: ExposureConfig,
    exposure_memo: Mutex<HashMap<usize, Option<(f64, bool)>>>,
    /// RFC 8416 local-exception layer: when present, `payload` holds
    /// the excepted set, this validator answers validity queries from
    /// it, and the stats say how far it diverges from the snapshot.
    slurm: Option<(RouteOriginValidator, SlurmStats)>,
}

impl EpochView {
    /// Bind a snapshot to the results measured from it.
    ///
    /// # Panics
    ///
    /// If `snapshot.epoch() != results.epoch` — pairing a snapshot with
    /// results from a different epoch is exactly the inconsistency this
    /// type exists to rule out.
    pub fn new(
        snapshot: Arc<WorldSnapshot>,
        results: Arc<StudyResults>,
        topology: Option<Arc<Topology>>,
        exposure: ExposureConfig,
    ) -> EpochView {
        assert_eq!(
            snapshot.epoch(),
            results.epoch,
            "epoch-consistency contract: snapshot and results must share an epoch"
        );
        let mut by_name = HashMap::with_capacity(results.domains.len() * 2);
        for (i, d) in results.domains.iter().enumerate() {
            let bare = d.listed.without_www();
            by_name.insert(bare.with_www(), i);
            by_name.insert(bare, i);
            by_name.insert(d.listed.clone(), i);
        }
        // Built once per view, shared from then on: the VRP exports and
        // any co-hosted RTR/proxy plane all serve this one canonically
        // ordered payload, so equal epochs are byte-identical across
        // every wire form.
        let payload = VrpPayload::new(snapshot.epoch(), snapshot.vrps().iter().copied());
        EpochView {
            snapshot,
            results,
            payload,
            by_name,
            topology,
            exposure,
            exposure_memo: Mutex::new(HashMap::new()),
            slurm: None,
        }
    }

    /// Layer RFC 8416 local exceptions over this view: the served
    /// payload becomes the excepted set (same epoch), and validity and
    /// exposure queries answer from a validator built over it — so
    /// `/vrps.{json,csv}`, `/api/v1/validity`, and any co-hosted RTR
    /// cache fed from [`EpochView::payload`] all agree.
    pub fn with_exceptions(mut self, exceptions: &ExceptionSet) -> EpochView {
        let (payload, stats) = exceptions.excepted_with_stats(&self.payload);
        let validator = RouteOriginValidator::from_vrps(payload.vrps().iter().copied());
        self.payload = payload;
        self.slurm = Some((validator, stats));
        self
    }

    /// How the local-exception layer changed this epoch's set, when one
    /// is configured: `(filtered, asserted)` VRP counts.
    pub fn slurm_stats(&self) -> Option<SlurmStats> {
        self.slurm.as_ref().map(|(_, stats)| *stats)
    }

    /// The validator queries answer from: the exception-layered one
    /// when configured, the snapshot's otherwise.
    pub fn validator(&self) -> &RouteOriginValidator {
        self.slurm
            .as_ref()
            .map_or_else(|| self.snapshot.validator(), |(validator, _)| validator)
    }

    /// Full RFC 6811 verdict for one announcement, answered from the
    /// same VRP set the exports serve (exception-layered when
    /// configured).
    pub fn validity(&self, prefix: &IpPrefix, origin: Asn) -> ValidityDetail {
        self.validator().validity(prefix, origin)
    }

    /// The epoch both halves of the view share.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The epoch's VRP set as the crate-neutral payload every serving
    /// plane shares (built once in [`EpochView::new`]).
    pub fn payload(&self) -> &VrpPayload {
        &self.payload
    }

    /// The underlying world snapshot.
    pub fn snapshot(&self) -> &WorldSnapshot {
        &self.snapshot
    }

    /// The measurements taken from this snapshot.
    pub fn results(&self) -> &StudyResults {
        &self.results
    }

    /// Look up a measured domain by either name form.
    pub fn domain(&self, name: &DomainName) -> Option<&DomainMeasurement> {
        self.domain_entry(name).map(|(_, d)| d)
    }

    /// Like [`EpochView::domain`], but also yields the domain's index in
    /// `results().domains` — the key the exposure memo is filed under.
    pub fn domain_entry(&self, name: &DomainName) -> Option<(usize, &DomainMeasurement)> {
        let &i = self
            .by_name
            .get(name)
            .or_else(|| self.by_name.get(&name.without_www()))?;
        Some((i, self.results.domains.get(i)?))
    }

    /// Hijack exposure `(capture_rate, fully_covered)` for the measured
    /// domain at `index`, or `None` when the view has no topology or the
    /// domain is not simulable (no usable pair, or its origin AS lies
    /// outside the topology).
    ///
    /// Memoized per epoch: the view is immutable, so the first request
    /// for a domain pays for the BGP hijack simulation and every repeat
    /// within the epoch is a map hit. The simulation itself runs outside
    /// the memo lock — a slow first computation never blocks lookups for
    /// other domains; two racing requests at worst both compute the same
    /// deterministic value.
    pub fn exposure(&self, index: usize) -> Option<(f64, bool)> {
        let topology = self.topology.as_deref()?;
        if let Some(hit) = self.memo_get(index) {
            return hit;
        }
        let domain = self.results.domains.get(index)?;
        let cfg = ExposureConfig {
            stride: 1,
            ..self.exposure.clone()
        };
        let computed = exposure_curve(
            std::slice::from_ref(domain),
            topology,
            self.validator(),
            &cfg,
        )
        .first()
        .map(|e| (e.capture_rate, e.fully_covered));
        self.memo_put(index, computed);
        computed
    }

    fn memo_get(&self, index: usize) -> Option<Option<(f64, bool)>> {
        // Poison recovery: the memo caches pure-function results keyed
        // by index, so a panicked holder cannot have left a wrong or
        // torn value behind.
        let memo = self
            .exposure_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        memo.get(&index).copied()
    }

    fn memo_put(&self, index: usize, value: Option<(f64, bool)>) {
        // Poison recovery: see `memo_get`.
        let mut memo = self
            .exposure_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        memo.insert(index, value);
    }

    /// The AS topology for exposure simulation, when the operator
    /// provided one (scenario-backed servers do; file-backed worlds
    /// have no topology and skip exposure).
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_deref()
    }

    /// Exposure experiment parameters used by the domain endpoint.
    pub fn exposure_config(&self) -> &ExposureConfig {
        &self.exposure
    }
}

/// The swap point between the study engine and the request handlers.
pub struct SharedView {
    inner: RwLock<Arc<EpochView>>,
    /// Newest epoch known to exist anywhere upstream (announced via
    /// [`SharedView::announce_epoch`] before the view for it is built,
    /// and by every publish). `/status` reports the distance between
    /// this and the served epoch as `epoch_lag`.
    newest: AtomicU64,
}

impl SharedView {
    /// Start serving `view`.
    pub fn new(view: EpochView) -> SharedView {
        let newest = AtomicU64::new(view.epoch());
        SharedView {
            inner: RwLock::new(Arc::new(view)),
            newest,
        }
    }

    /// Record that epoch `epoch` exists upstream (validated by the
    /// engine, gossiped by a proxy) even though its view may not be
    /// built yet. Monotonic: older announcements never lower the mark.
    pub fn announce_epoch(&self, epoch: u64) {
        self.newest.fetch_max(epoch, Ordering::SeqCst);
    }

    /// The newest epoch announced or published so far.
    pub fn newest_epoch(&self) -> u64 {
        self.newest.load(Ordering::SeqCst)
    }

    /// How far the served view trails the newest announced epoch
    /// (0 when fully caught up).
    pub fn epoch_lag(&self) -> u64 {
        self.newest_epoch().saturating_sub(self.current().epoch())
    }

    /// The view requests should answer from right now. The returned
    /// `Arc` pins that epoch for the whole request even if a publish
    /// lands mid-handler.
    pub fn current(&self) -> Arc<EpochView> {
        // A poisoned lock only means some thread panicked while holding
        // it; the guarded value is a whole `Arc` that is never left
        // half-swapped, so recovering the guard is always safe and
        // beats cascading the panic into every request thread.
        let guard = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(&guard)
    }

    /// Atomically replace the served view. Epochs must move forward;
    /// publishing a stale view would silently answer queries from the
    /// past.
    pub fn publish(&self, view: EpochView) {
        // Poison recovery: see `current` — the Arc swap below is atomic
        // from the reader's perspective, so a previously panicked holder
        // cannot have left torn state behind.
        let mut guard = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(
            view.epoch() > guard.epoch(),
            "publish must advance the epoch ({} -> {})",
            guard.epoch(),
            view.epoch()
        );
        self.newest.fetch_max(view.epoch(), Ordering::SeqCst);
        *guard = Arc::new(view);
    }
}
