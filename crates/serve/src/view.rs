//! The epoch-consistent view the HTTP plane answers from.
//!
//! Every response is computed against exactly one [`EpochView`]: a
//! `WorldSnapshot` and the `StudyResults` measured *from that snapshot*,
//! bound together and stamped with the shared epoch. The view is
//! published atomically behind an `Arc` swap ([`SharedView`]), so a
//! request either sees the world entirely at epoch N or entirely at
//! epoch N+1 — never VRPs from one epoch and measurements from another.
//! The constructor enforces the contract; the concurrency test in
//! `tests/concurrent_epoch.rs` hammers it under live churn.

use ripki::engine::WorldSnapshot;
use ripki::exposure::ExposureConfig;
use ripki::pipeline::{DomainMeasurement, StudyResults};
use ripki_bgp::topology::Topology;
use ripki_dns::DomainName;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// One epoch of the world, packaged for serving.
pub struct EpochView {
    snapshot: Arc<WorldSnapshot>,
    results: Arc<StudyResults>,
    by_name: HashMap<DomainName, usize>,
    topology: Option<Arc<Topology>>,
    exposure: ExposureConfig,
}

impl EpochView {
    /// Bind a snapshot to the results measured from it.
    ///
    /// # Panics
    ///
    /// If `snapshot.epoch() != results.epoch` — pairing a snapshot with
    /// results from a different epoch is exactly the inconsistency this
    /// type exists to rule out.
    pub fn new(
        snapshot: Arc<WorldSnapshot>,
        results: Arc<StudyResults>,
        topology: Option<Arc<Topology>>,
        exposure: ExposureConfig,
    ) -> EpochView {
        assert_eq!(
            snapshot.epoch(),
            results.epoch,
            "epoch-consistency contract: snapshot and results must share an epoch"
        );
        let mut by_name = HashMap::with_capacity(results.domains.len() * 2);
        for (i, d) in results.domains.iter().enumerate() {
            let bare = d.listed.without_www();
            by_name.insert(bare.with_www(), i);
            by_name.insert(bare, i);
            by_name.insert(d.listed.clone(), i);
        }
        EpochView {
            snapshot,
            results,
            by_name,
            topology,
            exposure,
        }
    }

    /// The epoch both halves of the view share.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The underlying world snapshot.
    pub fn snapshot(&self) -> &WorldSnapshot {
        &self.snapshot
    }

    /// The measurements taken from this snapshot.
    pub fn results(&self) -> &StudyResults {
        &self.results
    }

    /// Look up a measured domain by either name form.
    pub fn domain(&self, name: &DomainName) -> Option<&DomainMeasurement> {
        self.by_name
            .get(name)
            .or_else(|| self.by_name.get(&name.without_www()))
            .map(|&i| &self.results.domains[i])
    }

    /// The AS topology for exposure simulation, when the operator
    /// provided one (scenario-backed servers do; file-backed worlds
    /// have no topology and skip exposure).
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_deref()
    }

    /// Exposure experiment parameters used by the domain endpoint.
    pub fn exposure_config(&self) -> &ExposureConfig {
        &self.exposure
    }
}

/// The swap point between the study engine and the request handlers.
pub struct SharedView {
    inner: RwLock<Arc<EpochView>>,
}

impl SharedView {
    /// Start serving `view`.
    pub fn new(view: EpochView) -> SharedView {
        SharedView {
            inner: RwLock::new(Arc::new(view)),
        }
    }

    /// The view requests should answer from right now. The returned
    /// `Arc` pins that epoch for the whole request even if a publish
    /// lands mid-handler.
    pub fn current(&self) -> Arc<EpochView> {
        Arc::clone(&self.inner.read().expect("view lock poisoned"))
    }

    /// Atomically replace the served view. Epochs must move forward;
    /// publishing a stale view would silently answer queries from the
    /// past.
    pub fn publish(&self, view: EpochView) {
        let mut guard = self.inner.write().expect("view lock poisoned");
        assert!(
            view.epoch() > guard.epoch(),
            "publish must advance the epoch ({} -> {})",
            guard.epoch(),
            view.epoch()
        );
        *guard = Arc::new(view);
    }
}
