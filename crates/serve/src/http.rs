//! A minimal, hardened HTTP/1.1 message layer over raw byte buffers.
//!
//! The workspace policy is synchronous `std::net` + threads, and the
//! container has no HTTP crate to lean on, so the query plane carries
//! its own parser. It follows the same incremental-decode shape as
//! [`ripki_rtr`]'s `Pdu::decode`: [`parse_head`] consumes a byte buffer
//! and answers *need more bytes* (`Ok(None)`), *here is a request and
//! how many bytes it used* (`Ok(Some(_))`), or *this connection is
//! speaking garbage* (`Err(_)`) — the error carrying the exact status
//! code the peer should see before the socket closes.
//!
//! Hardening is by construction: hard caps on head size, header count
//! and line length; no allocation proportional to attacker-controlled
//! numbers; bytes outside the printable ASCII range in the request line
//! are rejected rather than interpreted.

use std::io::{self, Read, Write};

/// Total bytes of request head (request line + headers + CRLFCRLF) we
/// are willing to buffer before giving up with 431.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on the request-target length (everything after the method).
pub const MAX_TARGET_BYTES: usize = 8 * 1024;
/// Cap on the number of header fields.
pub const MAX_HEADERS: usize = 64;

/// A parse failure, mapped to the HTTP status the peer should receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or header field → 400.
    Malformed(&'static str),
    /// Request target longer than [`MAX_TARGET_BYTES`] → 414.
    TargetTooLong,
    /// Head larger than [`MAX_HEAD_BYTES`] or more than [`MAX_HEADERS`]
    /// fields → 431.
    HeadTooLarge,
    /// An HTTP version other than 1.x → 505.
    BadVersion,
}

impl HttpError {
    /// The status code this error maps to on the wire.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::TargetTooLong => 414,
            HttpError::HeadTooLarge => 431,
            HttpError::BadVersion => 505,
        }
    }

    /// Human-readable reason sent in the error body.
    pub fn reason(&self) -> &'static str {
        match self {
            HttpError::Malformed(why) => why,
            HttpError::TargetTooLong => "request target too long",
            HttpError::HeadTooLarge => "request head too large",
            HttpError::BadVersion => "only HTTP/1.x is supported",
        }
    }
}

/// A parsed request head. Bodies are never *used*: every endpoint of
/// the query plane is a GET. Small announced bodies are read and
/// discarded ([`drain_body`]) so the connection stays reusable; chunked
/// or oversized ones close it (see [`body_disposition`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path, always starting with `/`.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header fields with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to keep the connection open. HTTP/1.1
    /// defaults to keep-alive; an explicit `Connection: close` wins.
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Try to parse one request head from the front of `buf`.
///
/// * `Ok(Some((request, n)))` — a complete head occupied `buf[..n]`.
/// * `Ok(None)` — no CRLFCRLF yet and the buffer is still under the
///   head cap; read more bytes and call again.
/// * `Err(e)` — the bytes can never become a valid request; answer
///   `e.status()` and close.
pub fn parse_head(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    // Strip the CRLFCRLF; `find_head_end` guarantees both bounds.
    let Some(head) = head_len.checked_sub(4).and_then(|n| buf.get(..n)) else {
        return Err(HttpError::Malformed("impossible head bounds"));
    };
    let mut lines = head
        .split(|&b| b == b'\n')
        .map(|l| l.strip_suffix(b"\r").unwrap_or(l));
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let (method, target, version) = split_request_line(request_line)?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadVersion);
    }
    if target.len() > MAX_TARGET_BYTES {
        return Err(HttpError::TargetTooLong);
    }
    let (path, query) = parse_target(target)?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            // An empty line inside the head means bare LF line endings
            // produced a phantom field; reject rather than guess.
            return Err(HttpError::Malformed("empty header line"));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadTooLarge);
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(HttpError::Malformed("header field without colon"))?;
        let (name, rest) = line.split_at(colon);
        if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
            return Err(HttpError::Malformed("invalid header name"));
        }
        let value = rest.get(1..).unwrap_or_default();
        if value.iter().any(|&b| b < 0x20 && b != b'\t') {
            return Err(HttpError::Malformed("control byte in header value"));
        }
        let name = String::from_utf8_lossy(name).to_ascii_lowercase();
        let value = String::from_utf8_lossy(value).trim().to_string();
        headers.push((name, value));
    }

    Ok(Some((
        Request {
            method,
            path,
            query,
            headers,
        },
        head_len,
    )))
}

/// Locate the end of the head (index just past CRLFCRLF), scanning no
/// further than the head cap plus slack for the terminator itself.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let window = buf.len().min(MAX_HEAD_BYTES + 4);
    buf.get(..window)
        .unwrap_or(buf)
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

fn split_request_line(line: &[u8]) -> Result<(String, &[u8], &str), HttpError> {
    if line
        .iter()
        .any(|&b| !(0x21..=0x7e).contains(&b) && b != b' ')
    {
        return Err(HttpError::Malformed("non-printable byte in request line"));
    }
    let mut parts = line.split(|&b| b == b' ');
    let method = parts.next().filter(|m| !m.is_empty());
    let target = parts.next().filter(|t| !t.is_empty());
    let version = parts.next().filter(|v| !v.is_empty());
    let (Some(method), Some(target), Some(version), None) = (method, target, version, parts.next())
    else {
        return Err(HttpError::Malformed(
            "request line is not METHOD SP TARGET SP VERSION",
        ));
    };
    if !method.iter().all(|&b| is_token_byte(b)) {
        return Err(HttpError::Malformed("invalid method token"));
    }
    let method = String::from_utf8_lossy(method).to_ascii_uppercase();
    let version = std::str::from_utf8(version).map_err(|_| HttpError::BadVersion)?;
    Ok((method, target, version))
}

fn parse_target(target: &[u8]) -> Result<(String, Vec<(String, String)>), HttpError> {
    if target.first() != Some(&b'/') {
        return Err(HttpError::Malformed("request target must be origin-form"));
    }
    let (raw_path, raw_query) = match target.iter().position(|&b| b == b'?') {
        Some(i) => {
            let (path, rest) = target.split_at(i);
            (path, rest.get(1..))
        }
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)?;
    if path.bytes().any(|b| b < 0x20 || b == 0x7f) {
        return Err(HttpError::Malformed("control byte in decoded path"));
    }
    let mut query = Vec::new();
    if let Some(raw) = raw_query {
        for pair in raw.split(|&b| b == b'&').filter(|p| !p.is_empty()) {
            let eq = pair.iter().position(|&b| b == b'=').unwrap_or(pair.len());
            let (k, rest) = pair.split_at(eq);
            let v = rest.get(1..).unwrap_or_default();
            query.push((percent_decode(k, true)?, percent_decode(v, true)?));
        }
    }
    Ok((path, query))
}

/// Decode `%XX` escapes (and, in query components, `+` as space).
fn percent_decode(raw: &[u8], plus_is_space: bool) -> Result<String, HttpError> {
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while let Some(&byte) = raw.get(i) {
        match byte {
            b'%' => {
                let hi = raw.get(i + 1).and_then(|b| (*b as char).to_digit(16));
                let lo = raw.get(i + 2).and_then(|b| (*b as char).to_digit(16));
                let (Some(hi), Some(lo)) = (hi, lo) else {
                    return Err(HttpError::Malformed("truncated percent escape"));
                };
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::Malformed("invalid UTF-8 after decoding"))
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Read from `stream` into `buf` until one full request head is parsed.
///
/// `Ok(None)` means the peer closed cleanly between requests (normal
/// keep-alive teardown). Parsed bytes are drained from `buf`, leaving
/// any pipelined follow-up bytes in place for the next call.
pub fn read_request<R: Read>(
    stream: &mut R,
    buf: &mut Vec<u8>,
) -> io::Result<Result<Option<Request>, HttpError>> {
    loop {
        match parse_head(buf) {
            Ok(Some((request, consumed))) => {
                buf.drain(..consumed);
                return Ok(Ok(Some(request)));
            }
            Ok(None) => {}
            Err(e) => return Ok(Err(e)),
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(Ok(None));
            }
            return Ok(Err(HttpError::Malformed("connection closed mid-request")));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or(&chunk));
    }
}

/// Largest announced request body the server will read and discard to
/// keep the connection alive; anything larger (or chunked) costs the
/// connection instead of worker time.
pub const MAX_DRAIN_BODY_BYTES: usize = 8 * 1024;

/// What to do with a request body none of the endpoints ever read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyDisposition {
    /// No body announced — nothing to do.
    None,
    /// Small fixed-length body: read and discard these many bytes, then
    /// the connection is reusable.
    Drain(usize),
    /// Chunked, oversized, or malformed framing: answer and close.
    Close,
}

/// Classify the request's body framing for [`drain_body`].
///
/// `Content-Length` is parsed strictly (digits only, all occurrences
/// must agree) — anything questionable closes the connection rather
/// than risking request smuggling on a reused stream.
pub fn body_disposition(request: &Request) -> BodyDisposition {
    if request.header("transfer-encoding").is_some() {
        return BodyDisposition::Close;
    }
    let mut lengths = request
        .headers
        .iter()
        .filter(|(name, _)| name == "content-length")
        .map(|(_, value)| value.as_str());
    let Some(first) = lengths.next() else {
        return BodyDisposition::None;
    };
    if lengths.any(|other| other != first) {
        return BodyDisposition::Close;
    }
    let strict = !first.is_empty() && first.bytes().all(|b| b.is_ascii_digit());
    match (strict, first.parse::<usize>()) {
        (true, Ok(0)) => BodyDisposition::None,
        (true, Ok(n)) if n <= MAX_DRAIN_BODY_BYTES => BodyDisposition::Drain(n),
        _ => BodyDisposition::Close,
    }
}

/// Read and discard `len` body bytes, consuming pipelined bytes already
/// sitting in `buf` first. An early EOF is an error — the next parse
/// would otherwise misframe whatever arrived.
pub fn drain_body<R: Read>(stream: &mut R, buf: &mut Vec<u8>, len: usize) -> io::Result<()> {
    let buffered = buf.len().min(len);
    buf.drain(..buffered);
    let mut remaining = len - buffered;
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        let n = match chunk.get_mut(..want) {
            Some(window) => stream.read(window)?,
            None => stream.read(&mut chunk)?,
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed mid-body",
            ));
        }
        remaining = remaining.saturating_sub(n);
    }
    Ok(())
}

// ---------------------------------------------------------------- response

/// A writer-driven body producer: writes the payload and returns the
/// number of bytes written.
pub type StreamFn = Box<dyn FnOnce(&mut dyn Write) -> io::Result<u64> + Send>;

/// A response body: fully materialised, or streamed straight to the
/// socket (used by the VRP exports, which can be large at scale).
pub enum Body {
    /// In-memory payload, sent with `Content-Length` (keep-alive safe).
    Full(Vec<u8>),
    /// Writer-driven payload. No length is known up front, so the
    /// response is delimited by connection close (`Connection: close`).
    Stream(StreamFn),
}

/// A response ready to serialise.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `etag`) beyond the fixed set
    /// `write_to` always emits. Names must be lower-case.
    pub headers: Vec<(&'static str, String)>,
    /// The payload.
    pub body: Body,
}

impl Response {
    /// A JSON response from a value tree.
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        // Serialising an in-memory value tree cannot fail in practice;
        // if it ever does, degrade to a well-formed error payload
        // instead of panicking inside a request handler.
        let mut text = serde_json::to_string(value)
            .unwrap_or_else(|_| r#"{"error":"response serialization failed"}"#.to_string());
        text.push('\n');
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: Body::Full(text.into_bytes()),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, text: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: Body::Full(text.into().into_bytes()),
        }
    }

    /// Attach an extra response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// An empty-bodied `304 Not Modified` carrying the entity tag the
    /// conditional request matched. `Body::Full` keeps the connection
    /// reusable, which is the whole point of answering 304.
    pub fn not_modified(etag: impl Into<String>) -> Response {
        Response {
            status: 304,
            content_type: "text/plain; charset=utf-8",
            headers: vec![("etag", etag.into())],
            body: Body::Full(Vec::new()),
        }
    }

    /// The canonical error shape: `{"error": reason}` with a status.
    pub fn error(status: u16, reason: &str) -> Response {
        let mut obj = serde_json::Map::new();
        obj.insert("error".into(), reason.into());
        Response::json(status, &serde_json::Value::Object(obj))
    }

    /// The response a parse failure maps to.
    pub fn from_http_error(e: &HttpError) -> Response {
        Response::error(e.status(), e.reason())
    }

    /// Serialise head + body to `w`. Returns whether the connection may
    /// stay open afterwards (`false` for streamed bodies and for
    /// `want_keep_alive == false`).
    pub fn write_to(self, w: &mut dyn Write, want_keep_alive: bool) -> io::Result<bool> {
        let keep_alive = want_keep_alive && matches!(self.body, Body::Full(_));
        let reason = status_reason(self.status);
        let mut extra = String::new();
        for (name, value) in &self.headers {
            extra.push_str(name);
            extra.push_str(": ");
            extra.push_str(value);
            extra.push_str("\r\n");
        }
        match self.body {
            Body::Full(payload) => {
                write!(
                    w,
                    "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{extra}connection: {}\r\n\r\n",
                    self.status,
                    reason,
                    self.content_type,
                    payload.len(),
                    if keep_alive { "keep-alive" } else { "close" },
                )?;
                w.write_all(&payload)?;
            }
            Body::Stream(writer) => {
                write!(
                    w,
                    "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n{extra}connection: close\r\n\r\n",
                    self.status, reason, self.content_type,
                )?;
                writer(w)?;
            }
        }
        w.flush()?;
        Ok(keep_alive)
    }
}

/// Reason phrases for the statuses the query plane emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets the request path.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Option<(Request, usize)>, HttpError> {
        parse_head(s.as_bytes())
    }

    #[test]
    fn parses_a_simple_get() {
        let (req, n) = parse("GET /status HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(n, 33);
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/status");
        assert!(req.query.is_empty());
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
    }

    #[test]
    fn decodes_query_and_percent_escapes() {
        let (req, _) =
            parse("GET /api/v1/validity?asn=AS65000&prefix=10.0.0.0%2F24 HTTP/1.1\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(req.query_param("asn"), Some("AS65000"));
        assert_eq!(req.query_param("prefix"), Some("10.0.0.0/24"));
    }

    #[test]
    fn incomplete_head_wants_more_bytes() {
        assert_eq!(parse("GET / HTTP/1.1\r\nHost:").unwrap(), None);
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn leftover_bytes_stay_in_buffer() {
        let text = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (req, n) = parse(text).unwrap().unwrap();
        assert_eq!(req.path, "/a");
        let (req2, _) = parse_head(&text.as_bytes()[n..]).unwrap().unwrap();
        assert_eq!(req2.path, "/b");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for bad in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "G\x01T / HTTP/1.1\r\n\r\n",
            "GET /%zz HTTP/1.1\r\n\r\n",
        ] {
            assert_eq!(parse(bad).unwrap_err().status(), 400, "{bad:?}");
        }
        assert_eq!(
            parse("GET / SPDY/3\r\n\r\n").unwrap_err(),
            HttpError::BadVersion
        );
    }

    #[test]
    fn enforces_size_limits() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_TARGET_BYTES));
        assert_eq!(parse(&long_target).unwrap_err(), HttpError::TargetTooLong);

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many_headers.push_str(&format!("x-h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert_eq!(parse(&many_headers).unwrap_err(), HttpError::HeadTooLarge);

        // A buffer at the cap with no terminator can never complete.
        let oversized = vec![b'a'; MAX_HEAD_BYTES];
        assert_eq!(parse_head(&oversized).unwrap_err(), HttpError::HeadTooLarge);
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let (req, _) = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn response_serialises_with_length() {
        let mut out = Vec::new();
        let keep = Response::text(200, "hi").write_to(&mut out, true).unwrap();
        assert!(keep);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhi"), "{text}");
    }

    #[test]
    fn extra_headers_serialise_before_connection() {
        let mut out = Vec::new();
        Response::text(200, "hi")
            .with_header("etag", "\"e-1\"")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("etag: \"e-1\"\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn not_modified_keeps_the_connection_and_has_no_body() {
        let mut out = Vec::new();
        let keep = Response::not_modified("\"e-7\"")
            .write_to(&mut out, true)
            .unwrap();
        assert!(keep, "304 must not cost the connection");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 304 Not Modified\r\n"), "{text}");
        assert!(text.contains("etag: \"e-7\"\r\n"), "{text}");
        assert!(text.contains("content-length: 0\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n"), "{text}");
    }

    #[test]
    fn streamed_response_closes_connection() {
        let mut out = Vec::new();
        let response = Response {
            status: 200,
            content_type: "text/csv",
            headers: Vec::new(),
            body: Body::Stream(Box::new(|w: &mut dyn Write| {
                w.write_all(b"a,b\n")?;
                Ok(4)
            })),
        };
        let keep = response.write_to(&mut out, true).unwrap();
        assert!(!keep);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.ends_with("a,b\n"), "{text}");
    }
}
