//! # ripki-serve
//!
//! The epoch-consistent HTTP query plane over the study engine: an
//! event-driven HTTP/1.1 server built on a hand-rolled `poll(2)`
//! reactor (`std::net` + one reactor thread + a small worker pool — no
//! async runtime, per the workspace's offline-build policy) exposing
//! the live study state that until now was only reachable through the
//! CLI's batch reports and the RTR binary protocol.
//!
//! The moving parts:
//!
//! * [`reactor`] — the readiness loop owning non-blocking accept, all
//!   socket reads/writes, deadlines, and backpressure (admission
//!   window, ready-queue shed, connection watermark, lingering close).
//! * [`conn`] — the pure per-connection HTTP/1.1 state machine:
//!   incremental head parsing, bounded body draining, pipelining with
//!   in-order responses, close/shed framing.
//! * [`pool`] — worker threads running handlers off the reactor thread
//!   and handing serialised responses back through a wake-on-push
//!   completion queue.
//!
//! Endpoints:
//!
//! | path | payload |
//! |------|---------|
//! | `GET /api/v1/validity?asn=&prefix=` | RFC 6811 verdict with covering VRPs, Routinator-compatible |
//! | `GET /api/v1/validity/{asn}/{prefix}` | same, path form |
//! | `GET /vrps.json`, `GET /vrps.csv` | the current epoch's full VRP export, streamed |
//! | `GET /api/v1/domain/{name}` | a ranked domain's measurement + hijack exposure |
//! | `GET /metrics` | Prometheus text: request counters, latency histograms, epoch, VRP count |
//! | `GET /status` | liveness summary |
//!
//! The consistency story is the crate's spine: handlers answer from an
//! [`EpochView`](view::EpochView) — a `WorldSnapshot` bound to the
//! `StudyResults` measured from it, swapped atomically on each churn
//! epoch ([`SharedView`](view::SharedView)) and stamped into every
//! response. HTTP answers, RTR serials and `EpochDelta`s all advance in
//! lockstep; `DESIGN.md` § "The serving plane" states the contract.

pub mod api;
pub mod conn;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod reactor;
pub mod server;
pub mod view;

pub use metrics::{Endpoint, Metrics};
pub use server::{Server, ServerConfig};
pub use view::{EpochView, SharedView};
