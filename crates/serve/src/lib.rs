//! # ripki-serve
//!
//! The epoch-consistent HTTP query plane over the study engine: a
//! synchronous, thread-pooled HTTP/1.1 server (`std::net` + threads,
//! per the workspace's no-async policy) exposing the live study state
//! that until now was only reachable through the CLI's batch reports
//! and the RTR binary protocol.
//!
//! Endpoints:
//!
//! | path | payload |
//! |------|---------|
//! | `GET /api/v1/validity?asn=&prefix=` | RFC 6811 verdict with covering VRPs, Routinator-compatible |
//! | `GET /api/v1/validity/{asn}/{prefix}` | same, path form |
//! | `GET /vrps.json`, `GET /vrps.csv` | the current epoch's full VRP export, streamed |
//! | `GET /api/v1/domain/{name}` | a ranked domain's measurement + hijack exposure |
//! | `GET /metrics` | Prometheus text: request counters, latency histograms, epoch, VRP count |
//! | `GET /status` | liveness summary |
//!
//! The consistency story is the crate's spine: handlers answer from an
//! [`EpochView`](view::EpochView) — a `WorldSnapshot` bound to the
//! `StudyResults` measured from it, swapped atomically on each churn
//! epoch ([`SharedView`](view::SharedView)) and stamped into every
//! response. HTTP answers, RTR serials and `EpochDelta`s all advance in
//! lockstep; `DESIGN.md` § "The serving plane" states the contract.

pub mod api;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod server;
pub mod view;

pub use metrics::{Endpoint, Metrics};
pub use server::{Server, ServerConfig};
pub use view::{EpochView, SharedView};
