//! Per-connection HTTP/1.1 state machine for the event loop.
//!
//! [`ConnMachine`] is deliberately I/O-free: the reactor feeds it bytes
//! as they arrive ([`ConnMachine::on_bytes`]) and drains serialised
//! response bytes back out ([`ConnMachine::writable`]), which is what
//! makes the machine property-testable — splitting the same input at
//! arbitrary byte boundaries must produce byte-identical output to
//! feeding it in one shot.
//!
//! The machine reuses the hardened incremental head parser from
//! [`crate::http`] unchanged, and preserves the thread-pool server's
//! body contract: small announced bodies are discarded so keep-alive
//! survives, chunked or oversized ones cost the connection. Response
//! ordering is enforced structurally — at most one request is in
//! flight, parsed-but-undispatched requests wait in a bounded FIFO,
//! and an error or shed response is *deferred* until every response
//! ahead of it has been queued, so pipelined peers never see replies
//! out of order.

use crate::http::{body_disposition, parse_head, BodyDisposition, Request, Response};
use std::collections::VecDeque;

/// Static per-connection limits, distilled from the server config.
#[derive(Debug, Clone)]
pub struct ConnConfig {
    /// Requests served on one connection before it is closed.
    pub max_requests: usize,
    /// Parsed requests (queued + in flight) a connection may hold; when
    /// the bound is reached the machine stops asking for bytes and TCP
    /// backpressure reaches the peer.
    pub pipeline_depth: usize,
}

impl Default for ConnConfig {
    fn default() -> ConnConfig {
        ConnConfig {
            max_requests: 1024,
            pipeline_depth: 4,
        }
    }
}

/// A parsed request ready for dispatch, with the keep-alive verdict the
/// response serialiser must honour (folds the peer's wish, the body
/// disposition, and the per-connection request cap).
#[derive(Debug)]
pub struct PendingRequest {
    /// The parsed request head.
    pub request: Request,
    /// Whether the connection may stay open after this response.
    pub keep_alive: bool,
}

/// What the parser is doing with the next input bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadState {
    /// Accumulating and parsing a request head.
    Head,
    /// Discarding this many announced body bytes before the next head.
    Drain(usize),
    /// Never parse again (error, close-framed response, request cap, or
    /// EOF); remaining input is discarded.
    Stopped,
}

/// The pure state machine behind one event-loop connection.
pub struct ConnMachine {
    config: ConnConfig,
    /// Unparsed input bytes.
    buf: Vec<u8>,
    /// Serialised response bytes not yet written to the socket.
    out: Vec<u8>,
    /// How much of `out` has already been written.
    out_pos: usize,
    /// Parsed requests waiting for dispatch, oldest first.
    pending: VecDeque<PendingRequest>,
    /// Whether a request is currently with a worker.
    inflight: bool,
    read_state: ReadState,
    /// Requests parsed off this connection so far.
    accepted: usize,
    /// An error/timeout response waiting for the responses ahead of it.
    deferred: Option<Vec<u8>>,
    /// No response may follow the ones already queued; close once
    /// everything is flushed.
    close_after_flush: bool,
    /// The peer half-closed; finish queued work, then close.
    eof: bool,
    /// The close was triggered while client bytes may still be in
    /// flight (parse error, shed, unread body) — the reactor should
    /// linger-drain before closing to keep the response out of an RST.
    dirty_close: bool,
}

impl ConnMachine {
    /// A fresh machine for one accepted connection.
    pub fn new(config: ConnConfig) -> ConnMachine {
        ConnMachine {
            config,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            inflight: false,
            read_state: ReadState::Head,
            accepted: 0,
            deferred: None,
            close_after_flush: false,
            eof: false,
            dirty_close: false,
        }
    }

    // ------------------------------------------------------------ input

    /// Feed freshly read bytes. Returns the status of a request the
    /// machine rejected inline (parse failure), for metrics accounting;
    /// the rejection response is already queued in order.
    pub fn on_bytes(&mut self, data: &[u8]) -> Option<u16> {
        if self.read_state == ReadState::Stopped {
            // Anything past the stop point is body or garbage we will
            // never frame; drop it instead of buffering unbounded.
            return None;
        }
        self.buf.extend_from_slice(data);
        self.advance()
    }

    /// The peer sent FIN. Queued requests still get answered (TCP
    /// half-close), then the connection winds down.
    pub fn on_eof(&mut self) -> Option<u16> {
        self.eof = true;
        let mut rejected = None;
        if self.read_state == ReadState::Head && !self.buf.is_empty() && self.deferred.is_none() {
            // A partial head can never complete: tell the peer before
            // closing, mirroring the blocking server's 400.
            rejected = Some(400);
            self.defer_close(error_bytes(400, "connection closed mid-request"));
        }
        self.read_state = ReadState::Stopped;
        self.buf.clear();
        self.maybe_flush_deferred();
        rejected
    }

    /// Incremental parse over the buffered input. Returns a rejected
    /// status exactly as [`ConnMachine::on_bytes`] does.
    fn advance(&mut self) -> Option<u16> {
        let mut rejected = None;
        loop {
            match self.read_state {
                ReadState::Stopped => {
                    self.buf.clear();
                    break;
                }
                ReadState::Drain(remaining) => {
                    let take = remaining.min(self.buf.len());
                    self.buf.drain(..take);
                    if take < remaining {
                        self.read_state = ReadState::Drain(remaining - take);
                        break; // need more bytes to finish the body
                    }
                    self.read_state = ReadState::Head;
                }
                ReadState::Head => {
                    if self.pending.len() + usize::from(self.inflight) >= self.pipeline_capacity() {
                        break; // bounded queue full: leave bytes unparsed
                    }
                    match parse_head(&self.buf) {
                        Ok(None) => break,
                        Ok(Some((request, consumed))) => {
                            self.buf.drain(..consumed);
                            self.admit(request);
                        }
                        Err(e) => {
                            rejected = Some(e.status());
                            self.read_state = ReadState::Stopped;
                            self.dirty_close = true;
                            self.defer_close(response_bytes(Response::from_http_error(&e)));
                        }
                    }
                }
            }
        }
        self.maybe_flush_deferred();
        rejected
    }

    /// Queue one parsed request and update the parser state from its
    /// body framing and the request cap.
    fn admit(&mut self, request: Request) {
        self.accepted += 1;
        let disposition = body_disposition(&request);
        let capped = self.accepted >= self.config.max_requests;
        let keep_alive = request.keep_alive() && disposition != BodyDisposition::Close && !capped;
        match disposition {
            BodyDisposition::None => {}
            BodyDisposition::Drain(n) => self.read_state = ReadState::Drain(n),
            BodyDisposition::Close => {
                // The body length is unknowable (or too large to read):
                // nothing after it can ever be framed.
                self.read_state = ReadState::Stopped;
                self.dirty_close = true;
            }
        }
        if capped {
            // The cap may leave body or pipelined bytes unread; linger
            // on close so the final response survives.
            self.read_state = ReadState::Stopped;
            self.dirty_close = true;
        }
        self.pending.push_back(PendingRequest {
            request,
            keep_alive,
        });
    }

    // --------------------------------------------------------- dispatch

    /// Whether a request is ready for dispatch (FIFO order, one in
    /// flight at a time).
    pub fn dispatchable(&self) -> bool {
        !self.inflight && !self.pending.is_empty()
    }

    /// Take the next request for a worker. `None` while one is already
    /// in flight or nothing is queued.
    pub fn next_job(&mut self) -> Option<PendingRequest> {
        if self.inflight {
            return None;
        }
        let job = self.pending.pop_front()?;
        self.inflight = true;
        Some(job)
    }

    /// A worker finished the in-flight request: queue its serialised
    /// response. `keep_alive == false` (close-framed response) ends the
    /// connection once flushed — any pipelined followers are dropped,
    /// exactly as the blocking server dropped them.
    pub fn complete(&mut self, response: &[u8], keep_alive: bool) {
        self.inflight = false;
        self.out.extend_from_slice(response);
        if !keep_alive {
            self.close_after_flush = true;
            self.read_state = ReadState::Stopped;
            self.pending.clear();
            self.deferred = None;
            self.buf.clear();
        }
        self.maybe_flush_deferred();
        // Completing freed a pipeline slot; parse any waiting bytes.
        self.advance();
    }

    /// Shed the next queued request instead of dispatching it: its
    /// response becomes `response` (a 503 with `Connection: close`) and
    /// the connection winds down in order. Only legal when nothing is
    /// in flight — the reactor sheds at dispatch time, so the invariant
    /// holds structurally. Returns `false` if there was nothing to shed.
    pub fn shed_next(&mut self, response: &[u8]) -> bool {
        if self.inflight || self.pending.is_empty() {
            return false;
        }
        self.pending.clear();
        self.out.extend_from_slice(response);
        self.close_after_flush = true;
        self.read_state = ReadState::Stopped;
        self.deferred = None;
        self.buf.clear();
        self.dirty_close = true;
        true
    }

    /// Abort input with a final response (e.g. 408 on a slow-loris read
    /// deadline). The response is deferred behind queued work so the
    /// wire order stays correct.
    pub fn abort_input(&mut self, response: Vec<u8>) {
        if self.deferred.is_none() && !self.close_after_flush {
            self.defer_close(response);
        }
        self.read_state = ReadState::Stopped;
        self.buf.clear();
        self.dirty_close = true;
        self.maybe_flush_deferred();
    }

    /// Server-initiated drain (graceful shutdown): stop reading new
    /// requests, finish queued ones, close once flushed.
    pub fn begin_drain(&mut self) {
        self.read_state = ReadState::Stopped;
        self.buf.clear();
        self.eof = true;
        self.maybe_flush_deferred();
    }

    fn defer_close(&mut self, response: Vec<u8>) {
        self.deferred = Some(response);
    }

    /// Once every response ahead of it is queued, emit the deferred
    /// close response.
    fn maybe_flush_deferred(&mut self) {
        if self.inflight || !self.pending.is_empty() {
            return;
        }
        if let Some(bytes) = self.deferred.take() {
            self.out.extend_from_slice(&bytes);
            self.close_after_flush = true;
        }
    }

    // ----------------------------------------------------------- output

    /// Response bytes ready for the socket.
    pub fn writable(&self) -> &[u8] {
        self.out.get(self.out_pos..).unwrap_or_default()
    }

    /// Whether any output is waiting.
    pub fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Account `n` bytes accepted by the socket.
    pub fn advance_write(&mut self, n: usize) {
        self.out_pos = (self.out_pos + n).min(self.out.len());
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
    }

    // ------------------------------------------------------------ state

    /// Whether the reactor should keep read interest on this socket.
    pub fn wants_read(&self) -> bool {
        if self.close_after_flush || self.eof {
            return false;
        }
        match self.read_state {
            // Reading while draining a body is always useful.
            ReadState::Drain(_) => true,
            ReadState::Head => {
                self.pending.len() + usize::from(self.inflight) < self.pipeline_capacity()
            }
            ReadState::Stopped => false,
        }
    }

    /// Mid-message: a partial head or an unfinished body drain — the
    /// state the slow-loris deadline arms on.
    pub fn mid_message(&self) -> bool {
        match self.read_state {
            ReadState::Drain(_) => true,
            ReadState::Head => !self.buf.is_empty(),
            ReadState::Stopped => false,
        }
    }

    /// Completely quiescent between requests: eligible for idle timeout
    /// and least-recently-active shedding.
    pub fn is_idle(&self) -> bool {
        !self.inflight
            && self.pending.is_empty()
            && self.buf.is_empty()
            && !self.has_output()
            && self.deferred.is_none()
            && self.read_state == ReadState::Head
    }

    /// Everything queued has been answered and flushed; the socket can
    /// close.
    pub fn done(&self) -> bool {
        let drained = !self.inflight && self.pending.is_empty() && self.deferred.is_none();
        let flushed = !self.has_output();
        drained && flushed && (self.close_after_flush || self.eof)
    }

    /// Whether closing now risks an RST eating the final response: the
    /// peer may still have bytes in flight we never read. The reactor
    /// half-closes and linger-drains instead of dropping the socket.
    pub fn needs_linger(&self) -> bool {
        self.dirty_close
    }

    /// Requests parsed off this connection so far.
    pub fn requests_accepted(&self) -> usize {
        self.accepted
    }

    fn pipeline_capacity(&self) -> usize {
        self.config.pipeline_depth.max(1)
    }
}

/// Serialise a response for the out buffer. Writing to a `Vec` cannot
/// fail; on the impossible error the bytes written so far are used.
fn response_bytes(response: Response) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(256);
    let _ = response.write_to(&mut bytes, false);
    bytes
}

/// A canned close-framed error response.
pub fn error_bytes(status: u16, reason: &str) -> Vec<u8> {
    response_bytes(Response::error(status, reason))
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets the request path.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn machine() -> ConnMachine {
        ConnMachine::new(ConnConfig::default())
    }

    /// Run every dispatchable request through a trivial echo handler.
    fn pump(m: &mut ConnMachine) {
        while let Some(job) = m.next_job() {
            let body = format!("echo {}", job.request.path);
            let bytes = response_bytes(Response::text(200, body));
            m.complete(&bytes, job.keep_alive);
        }
    }

    fn drain_out(m: &mut ConnMachine) -> Vec<u8> {
        let bytes = m.writable().to_vec();
        m.advance_write(bytes.len());
        bytes
    }

    #[test]
    fn single_request_roundtrip() {
        let mut m = machine();
        assert_eq!(m.on_bytes(b"GET /a HTTP/1.1\r\nhost: t\r\n\r\n"), None);
        assert!(m.dispatchable());
        pump(&mut m);
        let out = String::from_utf8(drain_out(&mut m)).unwrap();
        assert!(out.contains("echo /a"), "{out}");
        assert!(!m.done(), "keep-alive connection stays open");
        assert!(m.is_idle());
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let mut m = machine();
        m.on_bytes(b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n");
        pump(&mut m);
        let out = String::from_utf8(drain_out(&mut m)).unwrap();
        let first = out.find("echo /1").unwrap();
        let second = out.find("echo /2").unwrap();
        assert!(first < second, "{out}");
    }

    #[test]
    fn parse_error_after_pipelined_request_is_deferred() {
        let mut m = machine();
        // A good request, then garbage: the 400 must not jump the queue.
        let rejected = m.on_bytes(b"GET /ok HTTP/1.1\r\n\r\nGARBAGE\r\n\r\n");
        assert_eq!(rejected, Some(400));
        assert!(
            !m.has_output(),
            "error response must wait for the good request"
        );
        pump(&mut m);
        let out = String::from_utf8(drain_out(&mut m)).unwrap();
        let ok = out.find("echo /ok").unwrap();
        let err = out.find("HTTP/1.1 400").unwrap();
        assert!(ok < err, "{out}");
        assert!(m.done());
        assert!(m.needs_linger());
    }

    #[test]
    fn announced_body_is_drained_across_chunks() {
        let mut m = machine();
        m.on_bytes(b"POST /s HTTP/1.1\r\ncontent-length: 6\r\n\r\nabc");
        assert!(m.mid_message(), "body drain in progress");
        pump(&mut m);
        m.on_bytes(b"defGET /next HTTP/1.1\r\n\r\n");
        assert!(m.dispatchable(), "body bytes must not be parsed as head");
        pump(&mut m);
        let out = String::from_utf8(drain_out(&mut m)).unwrap();
        assert!(out.contains("echo /next"), "{out}");
    }

    #[test]
    fn oversized_body_stops_parsing() {
        let mut m = machine();
        let head = format!("POST /s HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 9 * 1024);
        m.on_bytes(head.as_bytes());
        let job = m.next_job().unwrap();
        assert!(!job.keep_alive, "oversized body costs the connection");
        // Whatever follows is body; it must never become a request.
        m.on_bytes(b"GET /x HTTP/1.1\r\n\r\n");
        assert!(!m.dispatchable());
    }

    #[test]
    fn pipeline_depth_applies_backpressure() {
        let mut m = ConnMachine::new(ConnConfig {
            pipeline_depth: 2,
            ..ConnConfig::default()
        });
        let mut input = Vec::new();
        for i in 0..5 {
            input.extend_from_slice(format!("GET /{i} HTTP/1.1\r\n\r\n").as_bytes());
        }
        m.on_bytes(&input);
        assert_eq!(m.requests_accepted(), 2, "queue bounded at depth");
        assert!(!m.wants_read(), "full queue must drop read interest");
        pump(&mut m); // completing frees slots and resumes parsing
        assert_eq!(m.requests_accepted(), 5);
    }

    #[test]
    fn request_cap_closes_the_connection() {
        let mut m = ConnMachine::new(ConnConfig {
            max_requests: 2,
            ..ConnConfig::default()
        });
        m.on_bytes(b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\nGET /3 HTTP/1.1\r\n\r\n");
        let first = m.next_job().unwrap();
        assert!(first.keep_alive);
        m.complete(&response_bytes(Response::text(200, "a")), true);
        let second = m.next_job().unwrap();
        assert!(!second.keep_alive, "last allowed request must close");
        m.complete(&response_bytes(Response::text(200, "b")), false);
        drain_out(&mut m);
        assert!(m.done());
        assert_eq!(m.requests_accepted(), 2, "third request never parsed");
    }

    #[test]
    fn shed_replaces_the_next_response_and_closes() {
        let mut m = machine();
        m.on_bytes(b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n");
        let shed = error_bytes(503, "server overloaded");
        assert!(m.shed_next(&shed));
        let out = String::from_utf8(drain_out(&mut m)).unwrap();
        assert!(out.contains("HTTP/1.1 503"), "{out}");
        assert!(out.contains("connection: close"), "{out}");
        assert!(m.done());
        assert!(!m.dispatchable(), "followers dropped after a shed");
    }

    #[test]
    fn eof_mid_head_answers_400_after_queued_work() {
        let mut m = machine();
        m.on_bytes(b"GET /ok HTTP/1.1\r\n\r\nGET /partial");
        assert_eq!(m.on_eof(), Some(400));
        pump(&mut m);
        let out = String::from_utf8(drain_out(&mut m)).unwrap();
        assert!(out.find("echo /ok").unwrap() < out.find("HTTP/1.1 400").unwrap());
        assert!(m.done());
    }

    #[test]
    fn clean_eof_between_requests_closes_quietly() {
        let mut m = machine();
        m.on_bytes(b"GET /a HTTP/1.1\r\n\r\n");
        pump(&mut m);
        drain_out(&mut m);
        assert_eq!(m.on_eof(), None);
        assert!(m.done());
        assert!(!m.needs_linger());
    }
}
