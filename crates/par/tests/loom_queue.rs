//! Loom model of the work-stealing queue behind `run_indexed`.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (CI's static-analysis
//! lane), alongside the SharedView and ThreadPool models:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ripki-par --test loom_queue
//! ```
//!
//! Three invariants are modelled:
//!
//! 1. **No lost work items** — the union of what concurrent workers pop
//!    is exactly the index set the queue was built with.
//! 2. **No double-commit** — no index is handed to two workers, even
//!    when several workers steal from the same stripe at once.
//! 3. **Shutdown drains the queue** — workers loop until `pop` returns
//!    `None`, and once every worker has exited, the queue is provably
//!    empty; this holds even when a worker dies early (its stripe is
//!    stolen by the survivors).
//!
//! The vendored `loom` is an offline stand-in (bounded randomized
//! stress, not exhaustive model checking — see `vendor/loom`), so these
//! tests explore hundreds of schedules per run rather than all of them.
#![cfg(loom)]
// Test code: unwrap on join handles is fine here.
#![allow(clippy::unwrap_used)]

use loom::thread;
use ripki_par::WorkQueue;
use std::sync::Arc;

const ITEMS: usize = 9;
const WORKERS: usize = 3;

fn drain(queue: &WorkQueue, worker: usize) -> Vec<usize> {
    let mut got = Vec::new();
    while let Some(idx) = queue.pop(worker) {
        got.push(idx);
    }
    got
}

#[test]
fn concurrent_workers_pop_every_index_exactly_once() {
    loom::model(|| {
        let queue = Arc::new(WorkQueue::new(ITEMS, WORKERS));
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || drain(&queue, w))
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // Exactly once: sorted-equal to 0..ITEMS rules out both lost
        // items (missing index) and double-commit (duplicate index).
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
        // Every worker exited via `pop == None`, so the queue must be
        // drained for good — late arrivals see an empty queue too.
        assert_eq!(queue.pop(0), None, "queue must stay drained");
    });
}

#[test]
fn dead_worker_stripe_is_drained_by_survivors() {
    loom::model(|| {
        let queue = Arc::new(WorkQueue::new(ITEMS, WORKERS));
        // Worker 0 takes a single item and dies (models a panicked
        // worker whose thread is gone); its stripe must not strand work.
        let early = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.pop(0).into_iter().collect::<Vec<_>>())
        };
        let survivors: Vec<_> = (1..WORKERS)
            .map(|w| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || drain(&queue, w))
            })
            .collect();
        let mut all: Vec<usize> = early.join().unwrap();
        for h in survivors {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(
            all,
            (0..ITEMS).collect::<Vec<_>>(),
            "survivors must steal the dead worker's stripe dry"
        );
    });
}
