//! Work-stealing scoped-thread executor for the incremental planes.
//!
//! Both hot apply paths — per-publication-point revalidation in
//! `ripki-rpki` and per-domain re-measurement in `ripki` — follow the
//! same plan/execute/commit shape: a serial *plan* stage produces an
//! independent work list, a parallel *execute* stage maps each item to a
//! pure outcome value, and a serial *commit* stage folds the outcomes
//! back deterministically. This crate is the execute stage: a striped
//! work-stealing index queue ([`WorkQueue`]) and a scoped-thread driver
//! ([`run_indexed`]) with per-item panic isolation.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — [`run_indexed`] returns outcomes in *item*
//!    order, never completion order, so a commit stage that folds the
//!    returned vector front-to-back produces byte-identical state
//!    regardless of thread count or scheduling.
//! 2. **Panic isolation** — each work item runs under
//!    [`std::panic::catch_unwind`]; a panicking item yields `None` in
//!    its slot and every other item still completes (the skip-and-count
//!    discipline the sharded full run already follows).
//! 3. **No lost or duplicated work** — every index is handed out exactly
//!    once (the queue's stripes are mutex-guarded, so removal is
//!    atomic), and workers only exit once the whole queue is drained.
//!
//! The serial path (`threads <= 1` or a single-item list) runs inline on
//! the caller's thread with the same per-item catch, so thread count
//! changes behaviour only in wall-clock time, never in results.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A fixed work list of item indices, striped per worker with stealing.
///
/// `new(items, workers)` splits `0..items` into contiguous per-worker
/// stripes (preserving the cache locality of the old chunked sharding);
/// [`pop`](Self::pop) serves a worker from its own stripe's front and,
/// once that is empty, steals from the *back* of the other stripes. All
/// removal happens under a stripe's mutex, so an index is handed out
/// exactly once: no lost items, no double execution.
pub struct WorkQueue {
    stripes: Vec<Mutex<VecDeque<usize>>>,
    /// Upper bound on items still queued. Decremented *after* a
    /// successful pop, so a zero read proves the queue is empty; a
    /// non-zero read merely suggests scanning the stripes.
    remaining: AtomicUsize,
}

impl WorkQueue {
    /// Queue holding indices `0..items`, striped across `workers`
    /// (clamped to at least one stripe).
    pub fn new(items: usize, workers: usize) -> WorkQueue {
        let workers = workers.max(1);
        let chunk = items.div_ceil(workers).max(1);
        let stripes: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(items);
                let hi = ((w + 1) * chunk).min(items);
                Mutex::new((lo..hi).collect())
            })
            .collect();
        WorkQueue {
            stripes,
            remaining: AtomicUsize::new(items),
        }
    }

    /// Number of stripes (== the worker count passed to `new`).
    pub fn workers(&self) -> usize {
        self.stripes.len()
    }

    /// Take the next index for `worker`: own stripe first (front), then
    /// steal from the other stripes (back). `None` means the queue is
    /// fully drained — every index has been handed out.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        // Relaxed is enough: this is a monotone fast-path hint. The
        // counter is only decremented after an index has been removed
        // under a stripe mutex, so it never undercounts; a zero read
        // therefore proves emptiness, and any stale non-zero read just
        // sends us into the mutex-guarded scan below, which is the
        // source of truth.
        if self.remaining.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let n = self.stripes.len();
        for k in 0..n {
            let i = (worker + k) % n;
            let mut stripe = self.stripes[i]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let idx = if k == 0 {
                stripe.pop_front()
            } else {
                stripe.pop_back()
            };
            if let Some(idx) = idx {
                // Relaxed: see the load above — ordering against the
                // stripe contents is provided by the stripe mutex.
                self.remaining.fetch_sub(1, Ordering::Relaxed);
                return Some(idx);
            }
        }
        None
    }
}

/// Map `items` to outcomes over `threads` scoped worker threads, each
/// with its own context from `init`, returning results **in item
/// order**. A slot is `None` iff that item's `work` call panicked; all
/// other items still run (skip-and-count panic isolation).
///
/// `init(worker)` builds one context per worker — a resolver, a
/// verifier — so expensive state is created `min(threads, items)` times
/// rather than per item. With `threads <= 1` (or fewer than two items)
/// everything runs inline on the caller's thread, same catch semantics,
/// no spawn overhead.
///
/// `work` must be a pure function of `(context, index, item)` up to its
/// context's internal caches: outcomes are committed by the caller in
/// item order, so any cross-item coupling through shared state would
/// break the parallel ≡ serial guarantee. A panicking item may leave
/// its *worker context* in an arbitrary (but memory-safe) state; the
/// worker keeps using it, mirroring the sharded full run's discipline.
pub fn run_indexed<T, C, R>(
    threads: usize,
    items: &[T],
    init: impl Fn(usize) -> C + Sync,
    work: impl Fn(&mut C, usize, &T) -> R + Sync,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
{
    if threads <= 1 || items.len() <= 1 {
        let mut ctx = init(0);
        return items
            .iter()
            .enumerate()
            .map(|(idx, item)| catch_unwind(AssertUnwindSafe(|| work(&mut ctx, idx, item))).ok())
            .collect();
    }

    let workers = threads.min(items.len());
    let queue = WorkQueue::new(items.len(), workers);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let init = &init;
            let work = &work;
            scope.spawn(move || {
                let mut ctx = init(w);
                // Batch writes locally; one lock per worker at the end
                // keeps the slots mutex out of the hot loop.
                let mut local: Vec<(usize, Option<R>)> = Vec::new();
                while let Some(idx) = queue.pop(w) {
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| work(&mut ctx, idx, &items[idx])));
                    local.push((idx, outcome.ok()));
                }
                let mut slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
                for (idx, outcome) in local {
                    slots[idx] = outcome;
                }
            });
        }
    });
    slots.into_inner().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_hands_out_every_index_exactly_once() {
        let queue = WorkQueue::new(13, 4);
        let mut seen = BTreeSet::new();
        for w in [0, 3, 1, 2].into_iter().cycle() {
            let Some(idx) = queue.pop(w) else { break };
            assert!(seen.insert(idx), "index {idx} handed out twice");
        }
        assert_eq!(seen, (0..13).collect());
        for w in 0..4 {
            assert_eq!(queue.pop(w), None, "drained queue must stay empty");
        }
    }

    #[test]
    fn one_worker_can_steal_the_entire_queue() {
        let queue = WorkQueue::new(8, 4);
        let mut seen = BTreeSet::new();
        while let Some(idx) = queue.pop(2) {
            seen.insert(idx);
        }
        assert_eq!(seen, (0..8).collect(), "stealing must reach every stripe");
    }

    #[test]
    fn empty_queue_pops_none() {
        let queue = WorkQueue::new(0, 3);
        assert_eq!(queue.workers(), 3);
        assert_eq!(queue.pop(0), None);
    }

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..50).collect();
        for threads in [1, 2, 4, 8] {
            let out = run_indexed(
                threads,
                &items,
                |_| (),
                |(), idx, item| {
                    assert_eq!(idx, *item);
                    item * 3
                },
            );
            let expect: Vec<Option<usize>> = items.iter().map(|i| Some(i * 3)).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u64> = (0..97).map(|i| i * 17 % 31).collect();
        let serial = run_indexed(
            1,
            &items,
            |_| 0u64,
            |acc, _, item| {
                *acc += item;
                *acc + item * item
            },
        );
        // Per-worker contexts differ between runs, so only use the
        // context in ways the commit contract allows: here each item's
        // result must not depend on it. Recompute with a pure function
        // for the cross-thread comparison.
        let pure = |_: &mut (), _: usize, item: &u64| *item * *item;
        let one = run_indexed(1, &items, |_| (), pure);
        let four = run_indexed(4, &items, |_| (), pure);
        assert_eq!(one, four);
        assert_eq!(serial.len(), items.len());
    }

    #[test]
    fn panicking_item_is_isolated_to_its_slot() {
        let items: Vec<usize> = (0..20).collect();
        for threads in [1, 4] {
            let out = run_indexed(
                threads,
                &items,
                |_| (),
                |(), _, item| {
                    assert!(*item != 7, "poisoned work item");
                    *item
                },
            );
            for (i, slot) in out.iter().enumerate() {
                if i == 7 {
                    assert_eq!(*slot, None, "threads={threads}: poisoned slot must skip");
                } else {
                    assert_eq!(*slot, Some(i), "threads={threads}: item {i} must survive");
                }
            }
        }
    }

    #[test]
    fn init_runs_at_most_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = run_indexed(
            4,
            &items,
            |w| {
                inits.fetch_add(1, Ordering::SeqCst);
                w
            },
            |_, _, item| *item,
        );
        assert!(inits.load(Ordering::SeqCst) <= 4);
        assert_eq!(out.iter().filter(|s| s.is_some()).count(), 100);
    }

    #[test]
    fn more_threads_than_items_still_completes() {
        let items = [41usize, 42];
        let out = run_indexed(16, &items, |_| (), |(), _, item| item + 1);
        assert_eq!(out, vec![Some(42), Some(43)]);
    }
}
